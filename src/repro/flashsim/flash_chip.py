"""Raw NAND flash chip model.

A flash chip reads and writes at page granularity and erases at block
granularity.  Pages must be erased before they can be rewritten
(erase-before-write), and writing pages within a block out of order is
rejected, mirroring the constraints real NAND imposes and that the paper's
design principles P1-P3 (§4) are built around:

* P1 — random writes, in-place updates and sub-block deletions are very
  expensive (they force an erase of a 128-256 KB block);
* P2 — I/O happens at page granularity, so sub-page operations cost as much
  as a full page;
* P3 — the fixed initialisation cost of an I/O is amortised by large I/Os.

Latency parameters follow published NAND timings (page read ~0.06-0.25 ms,
page program ~0.2-0.8 ms, block erase ~1.5-2 ms) and match the flash-chip
series in Figure 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import PowerLossError
from repro.flashsim.clock import SimulationClock
from repro.flashsim.device import DeviceGeometry, StorageDevice
from repro.flashsim.latency import IOCost, LinearCostModel
from repro.flashsim.stats import IOKind


class FlashChipError(RuntimeError):
    """Raised when an operation violates flash constraints (e.g. rewriting a dirty page)."""


@dataclass(frozen=True)
class FlashChipProfile:
    """Calibrated parameters for one flash chip model."""

    name: str
    geometry: DeviceGeometry
    cost_model: LinearCostModel


def _default_flash_cost_model() -> LinearCostModel:
    # Fixed costs reflect command setup + array access; per-byte costs reflect
    # the serial interface transfer rate (~25 MB/s read, ~8 MB/s program).
    read = IOCost(fixed_ms=0.025, per_byte_ms=1.0 / (25 * 1024 * 1024) * 1000.0)
    write = IOCost(fixed_ms=0.2, per_byte_ms=1.0 / (8 * 1024 * 1024) * 1000.0)
    erase = IOCost(fixed_ms=1.5, per_byte_ms=1.0 / (128 * 1024 * 1024) * 1000.0)
    return LinearCostModel(
        random_read=read,
        sequential_read=read,
        random_write=write,
        sequential_write=write,
        erase=erase,
    )


GENERIC_FLASH_CHIP_PROFILE = FlashChipProfile(
    name="generic-nand",
    geometry=DeviceGeometry(page_size=2048, pages_per_block=64, num_blocks=4096),
    cost_model=_default_flash_cost_model(),
)


class FlashChip(StorageDevice):
    """A raw flash chip with erase-before-write semantics.

    The chip tracks a per-page clean/dirty bit.  Writing a dirty page raises
    :class:`FlashChipError`; callers (an FTL or a BufferHash partition writing
    its incarnations circularly) must erase the containing block first.
    """

    def __init__(
        self,
        profile: FlashChipProfile = GENERIC_FLASH_CHIP_PROFILE,
        clock: Optional[SimulationClock] = None,
        keep_events: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            geometry=profile.geometry,
            clock=clock,
            keep_events=keep_events,
            name=name or profile.name,
        )
        self.profile = profile
        self._cost_model = profile.cost_model
        self._dirty: set[int] = set()
        self.erase_count_per_block: dict[int, int] = {}

    # -- Flash-specific operations ---------------------------------------------

    def block_of(self, page_index: int) -> int:
        """Erase-block index containing ``page_index``."""
        self._check_page(page_index)
        return page_index // self.geometry.pages_per_block

    def is_dirty(self, page_index: int) -> bool:
        """Whether ``page_index`` has been programmed since its last erase."""
        self._check_page(page_index)
        return page_index in self._dirty

    def erase_block(self, block_index: int) -> float:
        """Erase one block, clearing all of its pages; returns the latency."""
        if not 0 <= block_index < self.geometry.num_blocks:
            raise IndexError(
                f"block {block_index} out of range (num_blocks={self.geometry.num_blocks})"
            )
        latency = self.faults.check(self._cost_model.erase_cost(self.geometry.block_size))
        if self._power_cut(1, "erase") is not None:
            self._apply_interrupted_erase(block_index)
            raise PowerLossError(
                f"power lost mid-erase of block {block_index} on device {self.name!r}"
            )
        self._record(IOKind.ERASE, self.geometry.block_size, latency, sequential=False)
        start = block_index * self.geometry.pages_per_block
        for page in range(start, start + self.geometry.pages_per_block):
            self._dirty.discard(page)
            self._pages.pop(page, None)
        self.erase_count_per_block[block_index] = (
            self.erase_count_per_block.get(block_index, 0) + 1
        )
        return latency

    def _apply_interrupted_erase(self, block_index: int) -> None:
        """Durable side effect of an erase interrupted mid-block.

        The in-memory chip has no durable media: the block simply keeps its
        pre-erase contents (and stays dirty, so the erase must be retried
        after :meth:`heal`).  File-backed devices override this to mark every
        frame in the block erased-dirty so reopen sees the half-erased state.
        """

    def write_page(self, page_index: int, data: bytes, sequential: Optional[bool] = None) -> float:
        """Program one page; the page must be clean (erased)."""
        self._check_page(page_index)
        if page_index in self._dirty:
            raise FlashChipError(
                f"page {page_index} is dirty; erase block {self.block_of(page_index)} first"
            )
        latency = super().write_page(page_index, data, sequential=sequential)
        self._dirty.add(page_index)
        return latency

    def write_range(self, start_page: int, pages: list[bytes]) -> float:
        """Program consecutive pages sequentially; all must be clean."""
        for offset in range(len(pages)):
            if (start_page + offset) in self._dirty:
                raise FlashChipError(
                    f"page {start_page + offset} is dirty; cannot stream-write over it"
                )
        latency = super().write_range(start_page, pages)
        for offset in range(len(pages)):
            self._dirty.add(start_page + offset)
        return latency

    # -- Latency hooks ---------------------------------------------------------

    def _read_latency(self, nbytes: int, sequential: bool) -> float:
        return self._cost_model.read_cost(nbytes, sequential=sequential)

    def _write_latency(self, nbytes: int, sequential: bool) -> float:
        return self._cost_model.write_cost(nbytes, sequential=sequential)
