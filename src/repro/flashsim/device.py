"""Abstract storage device interface shared by flash, SSD, disk and DRAM models.

Every device exposes page/sector-granularity reads and writes, advances a
shared :class:`~repro.flashsim.clock.SimulationClock` by the latency of each
operation and records the operation in an :class:`~repro.flashsim.stats.IOStats`
instance.  Devices store actual payload bytes so that data structures built on
top of them (incarnations, external hash pages, the content cache) can be
verified end to end, not just timed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.core.errors import PowerLossError
from repro.flashsim.clock import SimulationClock
from repro.flashsim.faults import FaultInjector
from repro.flashsim.stats import IOEvent, IOKind, IOStats
from repro.telemetry import trace as _trace


@dataclass(frozen=True)
class DeviceGeometry:
    """Size parameters of a block/page structured device.

    Attributes
    ----------
    page_size:
        Smallest unit of read/write in bytes (flash page or SSD/disk sector).
    pages_per_block:
        Pages per erase block (flash) or per track-equivalent grouping (disk).
        For devices without erase blocks this is purely informational.
    num_blocks:
        Number of erase blocks; total capacity is
        ``page_size * pages_per_block * num_blocks``.
    """

    page_size: int
    pages_per_block: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.pages_per_block <= 0:
            raise ValueError("pages_per_block must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")

    @property
    def block_size(self) -> int:
        """Bytes per erase block."""
        return self.page_size * self.pages_per_block

    @property
    def total_pages(self) -> int:
        """Total number of pages on the device."""
        return self.pages_per_block * self.num_blocks

    @property
    def capacity_bytes(self) -> int:
        """Raw device capacity in bytes."""
        return self.page_size * self.total_pages


class StorageDevice(abc.ABC):
    """Base class for simulated storage devices.

    Subclasses implement :meth:`_read_latency` and :meth:`_write_latency`
    (and optionally erase behaviour); this base class owns the clock,
    statistics and the page payload store.
    """

    def __init__(
        self,
        geometry: DeviceGeometry,
        clock: Optional[SimulationClock] = None,
        keep_events: bool = False,
        name: str = "device",
    ) -> None:
        self.geometry = geometry
        self.clock = clock if clock is not None else SimulationClock()
        self.stats = IOStats(keep_events=keep_events)
        self.name = name
        #: Fault-injection hook gating every I/O (healthy by default); see
        #: :mod:`repro.flashsim.faults` and the :meth:`fail`/:meth:`heal`
        #: convenience methods below.
        self.faults = FaultInjector(device_name=name)
        # Sparse payload store: page index -> bytes.  Pages never written
        # read back as empty bytes, mirroring an erased device.
        self._pages: dict[int, bytes] = {}
        self._last_accessed_page: Optional[int] = None

    # -- Payload handling ------------------------------------------------------

    def _check_page(self, page_index: int) -> None:
        if not 0 <= page_index < self.geometry.total_pages:
            raise IndexError(
                f"page {page_index} out of range for {self.name} "
                f"(total pages {self.geometry.total_pages})"
            )

    def _store_page(self, page_index: int, data: bytes) -> None:
        if len(data) > self.geometry.page_size:
            raise ValueError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.geometry.page_size}"
            )
        self._pages[page_index] = bytes(data)

    def _load_page(self, page_index: int) -> bytes:
        return self._pages.get(page_index, b"")

    def _is_sequential(self, page_index: int) -> bool:
        """Heuristic sequentiality detection based on the previous access."""
        previous = self._last_accessed_page
        self._last_accessed_page = page_index
        if previous is None:
            return False
        return page_index == previous + 1

    # -- Power-loss handling ---------------------------------------------------

    def _power_cut(self, units: int, kind: str) -> Optional[int]:
        """Advance an armed power-cut countdown by ``units`` I/O units.

        Returns the unit index at which power failed, or ``None``.  Split out
        so the common case (no countdown armed) stays one attribute check.
        """
        faults = self.faults
        if not faults.power_cut_armed:
            return None
        return faults.consume_io_units(units, kind)

    def _apply_torn_write(self, page_index: int, data: bytes) -> None:
        """Durable side effect of a write interrupted mid-page.

        In-memory devices have no durable media, so the interrupted write
        simply never lands; file-backed devices override this to leave a
        partially programmed frame that fails its CRC on reopen (see
        :class:`repro.flashsim.persistent.PersistentFlashDevice`).
        """

    # -- Lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release any resources the device holds.

        In-memory devices hold none, so this is a no-op; file-backed devices
        override it to flush and unmap their backing file deterministically.
        Safe to call more than once.
        """

    def __enter__(self) -> "StorageDevice":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- Recording helpers -----------------------------------------------------

    def _record(self, kind: IOKind, nbytes: int, latency_ms: float, sequential: bool) -> None:
        self.clock.advance(latency_ms)
        self.stats.record(
            IOEvent(
                kind=kind,
                nbytes=nbytes,
                latency_ms=latency_ms,
                sequential=sequential,
                timestamp_ms=self.clock.now_ms,
            )
        )
        tracer = _trace.ACTIVE
        if tracer is not None:
            # The clock already advanced past this I/O, so the event window is
            # [now - latency, now] on the device's own clock.
            tracer.event(
                "device." + kind.value,
                self.clock,
                duration_ms=latency_ms,
                device=self.name,
                nbytes=nbytes,
                sequential=sequential,
            )

    # -- Public API ------------------------------------------------------------

    def read_page(self, page_index: int) -> tuple[bytes, float]:
        """Read one page; returns ``(payload, latency_ms)``."""
        self._check_page(page_index)
        sequential = self._is_sequential(page_index)
        latency = self.faults.check(self._read_latency(self.geometry.page_size, sequential))
        if self._power_cut(1, "read") is not None:
            raise PowerLossError(
                f"power lost during read of page {page_index} on device {self.name!r}"
            )
        self._record(IOKind.READ, self.geometry.page_size, latency, sequential)
        return self._load_page(page_index), latency

    def write_page(self, page_index: int, data: bytes, sequential: Optional[bool] = None) -> float:
        """Write one page; returns the latency in milliseconds.

        ``sequential`` may be forced by the caller (e.g. an FTL that knows it
        is appending to a log); when omitted it is inferred from the access
        pattern.
        """
        self._check_page(page_index)
        if sequential is None:
            sequential = self._is_sequential(page_index)
        else:
            self._last_accessed_page = page_index
        latency = self.faults.check(self._write_latency(self.geometry.page_size, sequential))
        if self._power_cut(1, "write") is not None:
            self._apply_torn_write(page_index, bytes(data))
            raise PowerLossError(
                f"power lost mid-write of page {page_index} on device {self.name!r}"
            )
        self._record(IOKind.WRITE, self.geometry.page_size, latency, sequential)
        self._store_page(page_index, data)
        return latency

    def read_range(self, start_page: int, num_pages: int) -> tuple[list[bytes], float]:
        """Read ``num_pages`` consecutive pages as one streaming operation."""
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        self._check_page(start_page)
        self._check_page(start_page + num_pages - 1)
        nbytes = num_pages * self.geometry.page_size
        latency = self.faults.check(self._read_latency(nbytes, sequential=True))
        if self._power_cut(num_pages, "read") is not None:
            raise PowerLossError(
                f"power lost during streaming read at page {start_page} "
                f"on device {self.name!r}"
            )
        self._record(IOKind.READ, nbytes, latency, sequential=True)
        self._last_accessed_page = start_page + num_pages - 1
        return [self._load_page(start_page + i) for i in range(num_pages)], latency

    def write_range(self, start_page: int, pages: list[bytes]) -> float:
        """Write consecutive pages as one streaming (sequential) operation."""
        if not pages:
            raise ValueError("pages must be non-empty")
        self._check_page(start_page)
        self._check_page(start_page + len(pages) - 1)
        nbytes = len(pages) * self.geometry.page_size
        latency = self.faults.check(self._write_latency(nbytes, sequential=True))
        cut = self._power_cut(len(pages), "write")
        if cut is not None:
            # Pages before the cut completed and are durable; the cut page is
            # left torn (on devices that model torn pages).
            for offset in range(cut):
                self._store_page(start_page + offset, pages[offset])
            self._apply_torn_write(start_page + cut, bytes(pages[cut]))
            raise PowerLossError(
                f"power lost mid-write of page {start_page + cut} "
                f"(streaming write at page {start_page}) on device {self.name!r}"
            )
        self._record(IOKind.WRITE, nbytes, latency, sequential=True)
        for offset, data in enumerate(pages):
            self._store_page(start_page + offset, data)
        self._last_accessed_page = start_page + len(pages) - 1
        return latency

    # -- Fault injection -------------------------------------------------------

    def fail(self) -> None:
        """Crash-stop the device: every I/O raises
        :class:`~repro.core.errors.DeviceFailedError` until :meth:`heal`."""
        self.faults.crash()

    def heal(self) -> None:
        """Clear any injected fault and resume healthy operation."""
        self.faults.heal()

    @property
    def is_failed(self) -> bool:
        """Whether the device is currently crash-stopped."""
        return self.faults.is_crashed

    # -- Latency hooks ---------------------------------------------------------

    @abc.abstractmethod
    def _read_latency(self, nbytes: int, sequential: bool) -> float:
        """Latency in ms of reading ``nbytes`` with the given access pattern."""

    @abc.abstractmethod
    def _write_latency(self, nbytes: int, sequential: bool) -> float:
        """Latency in ms of writing ``nbytes`` with the given access pattern."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gib = self.geometry.capacity_bytes / float(1 << 30)
        return f"{type(self).__name__}(name={self.name!r}, capacity={gib:.2f} GiB)"
