"""Workload construction with controlled lookup success rate and operation mix.

Three builders cover the paper's micro-benchmarks:

* :func:`build_lookup_then_insert_workload` — the §7.2 default: every key is
  first looked up, then inserted; the target lookup success rate (LSR)
  controls how often the looked-up key was already inserted recently.
* :func:`build_mixed_workload` — an arbitrary lookup/insert mix (Table 3).
* :func:`build_update_workload` — an insert/lookup stream where a fraction of
  inserts are updates (or deletes) of existing keys (Figure 8).
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from repro.workloads.keygen import fingerprint_for


class OpKind(enum.Enum):
    """Kind of one workload operation."""

    LOOKUP = "lookup"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    """One operation in a workload stream."""

    kind: OpKind
    key: bytes
    value: bytes = b""


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a synthetic workload.

    Attributes
    ----------
    num_keys:
        Number of distinct new keys introduced by the workload.
    target_lsr:
        Desired lookup success rate — the probability that a lookup targets a
        key inserted recently enough to still be retained.
    lookup_fraction:
        Fraction of operations that are lookups (the rest are inserts), used
        by :func:`build_mixed_workload`.
    update_fraction:
        Fraction of inserts that overwrite an existing key, used by
        :func:`build_update_workload`.
    delete_fraction:
        Fraction of operations that delete an existing key.
    value_size:
        Size of generated values in bytes.
    recency_window:
        Lookups that are meant to hit sample their key from the most recent
        ``recency_window`` inserted keys, so hits stay within the CLAM's
        retention even when the workload is much larger than the table.
    seed:
        RNG seed; workloads are fully deterministic given the spec.
    """

    num_keys: int = 10_000
    target_lsr: float = 0.4
    lookup_fraction: float = 0.5
    update_fraction: float = 0.0
    delete_fraction: float = 0.0
    value_size: int = 8
    recency_window: int = 2_000
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if not 0.0 <= self.target_lsr <= 1.0:
            raise ValueError("target_lsr must be in [0, 1]")
        if not 0.0 <= self.lookup_fraction <= 1.0:
            raise ValueError("lookup_fraction must be in [0, 1]")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        if not 0.0 <= self.delete_fraction <= 1.0:
            raise ValueError("delete_fraction must be in [0, 1]")
        if self.value_size < 0:
            raise ValueError("value_size must be non-negative")
        if self.recency_window <= 0:
            raise ValueError("recency_window must be positive")


def _value_for(key: bytes, size: int) -> bytes:
    if size == 0:
        return b""
    repeated = (key * ((size // max(1, len(key))) + 1))[:size]
    return repeated


def lookup_operations(keys: Iterable[bytes]) -> List[Operation]:
    """One :class:`Operation` batch looking up every key, in order.

    Builders for the per-object round trips of the batched WAN-optimizer
    path (:meth:`repro.wanopt.engine.CompressionEngine.process_object_batched`
    via :meth:`repro.service.cluster.ClusterService.lookup_batch`) and for
    any driver that wants to feed plain key sequences to ``execute_batch``.
    """
    return [Operation(OpKind.LOOKUP, key) for key in keys]


def insert_operations(items: Iterable[tuple]) -> List[Operation]:
    """One :class:`Operation` batch inserting every ``(key, value)``, in order."""
    return [Operation(OpKind.INSERT, key, value) for key, value in items]


class _RecentKeys:
    """Sliding window of recently inserted keys used to aim lookups at hits."""

    def __init__(self, window: int) -> None:
        self._window: Deque[bytes] = deque(maxlen=window)

    def add(self, key: bytes) -> None:
        self._window.append(key)

    def sample(self, rng: random.Random) -> Optional[bytes]:
        if not self._window:
            return None
        return self._window[rng.randrange(len(self._window))]

    def __len__(self) -> int:
        return len(self._window)


def build_lookup_then_insert_workload(spec: WorkloadSpec) -> List[Operation]:
    """The paper's default micro-benchmark: lookup each key, then insert it.

    With probability ``target_lsr`` the looked-up key is drawn from the
    recent-insert window (a hit); otherwise a brand-new key is looked up (a
    miss) and then inserted.
    """
    rng = random.Random(spec.seed)
    recent = _RecentKeys(spec.recency_window)
    operations: List[Operation] = []
    next_id = 0
    for _ in range(spec.num_keys):
        hit_key = recent.sample(rng) if rng.random() < spec.target_lsr else None
        if hit_key is not None:
            operations.append(Operation(OpKind.LOOKUP, hit_key))
            # Re-inserting the same key models the WAN optimizer updating the
            # fingerprint's location after a match.
            operations.append(
                Operation(OpKind.INSERT, hit_key, _value_for(hit_key, spec.value_size))
            )
        else:
            key = fingerprint_for(next_id, namespace=b"wl-%d" % spec.seed)
            next_id += 1
            operations.append(Operation(OpKind.LOOKUP, key))
            operations.append(Operation(OpKind.INSERT, key, _value_for(key, spec.value_size)))
            recent.add(key)
    return operations


def preload_keys_for(spec: WorkloadSpec) -> List[bytes]:
    """Keys :func:`build_mixed_workload` assumes are already in the index.

    Lookup-heavy mixes (e.g. Table 3's 100 %-lookup point) need a populated
    index to exhibit the target lookup success rate even though the operation
    stream itself contains few or no inserts; callers should insert these keys
    before running the workload (the paper pre-populates its tables the same
    way).
    """
    return [
        fingerprint_for(identifier, namespace=b"wl-pre-%d" % spec.seed)
        for identifier in range(spec.recency_window)
    ]


def build_mixed_workload(spec: WorkloadSpec) -> List[Operation]:
    """A workload with an explicit lookup fraction (Table 3).

    Inserts introduce new keys; lookups hit recent keys (or the pre-loaded
    keys from :func:`preload_keys_for`) with probability ``target_lsr`` and
    miss otherwise.
    """
    rng = random.Random(spec.seed)
    recent = _RecentKeys(spec.recency_window)
    for key in preload_keys_for(spec):
        recent.add(key)
    operations: List[Operation] = []
    next_id = 0
    miss_id = 1_000_000_000
    for _ in range(spec.num_keys):
        if rng.random() < spec.lookup_fraction:
            hit_key = recent.sample(rng) if rng.random() < spec.target_lsr else None
            if hit_key is not None:
                operations.append(Operation(OpKind.LOOKUP, hit_key))
            else:
                operations.append(
                    Operation(
                        OpKind.LOOKUP,
                        fingerprint_for(miss_id, namespace=b"wl-miss-%d" % spec.seed),
                    )
                )
                miss_id += 1
        else:
            key = fingerprint_for(next_id, namespace=b"wl-%d" % spec.seed)
            next_id += 1
            operations.append(Operation(OpKind.INSERT, key, _value_for(key, spec.value_size)))
            recent.add(key)
    return operations


def build_update_workload(spec: WorkloadSpec) -> List[Operation]:
    """Insert/lookup stream where a fraction of inserts update existing keys.

    Used for the update-based and priority-based eviction experiments
    (Figure 8): updated keys make some on-flash entries stale, which is what
    partial-discard eviction reclaims.
    """
    rng = random.Random(spec.seed)
    recent = _RecentKeys(spec.recency_window)
    operations: List[Operation] = []
    next_id = 0
    for _ in range(spec.num_keys):
        update_key = recent.sample(rng) if rng.random() < spec.update_fraction else None
        if update_key is not None:
            if spec.delete_fraction > 0 and rng.random() < spec.delete_fraction:
                operations.append(Operation(OpKind.DELETE, update_key))
            else:
                operations.append(
                    Operation(
                        OpKind.UPDATE, update_key, _value_for(update_key, spec.value_size)
                    )
                )
        else:
            key = fingerprint_for(next_id, namespace=b"wl-upd-%d" % spec.seed)
            next_id += 1
            recent.add(key)
            operations.append(Operation(OpKind.INSERT, key, _value_for(key, spec.value_size)))
        if rng.random() < spec.lookup_fraction:
            hit_key = recent.sample(rng) if rng.random() < spec.target_lsr else None
            if hit_key is not None:
                operations.append(Operation(OpKind.LOOKUP, hit_key))
            else:
                operations.append(
                    Operation(
                        OpKind.LOOKUP,
                        fingerprint_for(next_id + 500_000_000, namespace=b"wl-upd-miss"),
                    )
                )
    return operations
