"""Workload runner: executes an operation stream against any hash index.

The runner only requires the index to expose the common
``insert``/``lookup``/``update``/``delete`` methods returning the result
records from :mod:`repro.core.results`; both :class:`repro.core.CLAM` and
every baseline in :mod:`repro.baselines` qualify, so a single runner powers
all the comparative experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Protocol

from repro.core.results import DeleteResult, InsertResult, LookupResult
from repro.workloads.metrics import LatencySummary, summarize_latencies
from repro.workloads.workload import Operation, OpKind


class HashIndex(Protocol):
    """Structural type of anything the runner can drive."""

    def insert(self, key, value) -> InsertResult:  # pragma: no cover - protocol
        ...

    def lookup(self, key) -> LookupResult:  # pragma: no cover - protocol
        ...

    def update(self, key, value) -> InsertResult:  # pragma: no cover - protocol
        ...

    def delete(self, key) -> DeleteResult:  # pragma: no cover - protocol
        ...


class BatchHashIndex(HashIndex, Protocol):
    """A hash index that can additionally execute grouped batches.

    :class:`repro.service.cluster.ClusterService` is the canonical
    implementation; ``execute_batch`` returns an object exposing ``results``
    (per-operation result records in submission order).
    """

    def execute_batch(self, operations):  # pragma: no cover - protocol
        ...


def apply_operation(index: HashIndex, operation: Operation, key=None):
    """Dispatch one workload operation to ``index`` and return its result record.

    The dispatch switch shared by the sequential runner and the service
    layer's batch executor.  Accounting switches (``_record`` here,
    ``_count`` in :mod:`repro.service.batch`) fold results into different
    report shapes and must also learn about any future operation kind.

    ``key`` lets a caller that already canonicalised the operation's key —
    e.g. the batch executor, which hashed it to route the sub-batch — pass
    the resulting :class:`~repro.core.hashing.KeyDigest` through so the index
    does not hash the key bytes a second time.
    """
    if key is None:
        key = operation.key
    if operation.kind is OpKind.LOOKUP:
        return index.lookup(key)
    if operation.kind is OpKind.INSERT:
        return index.insert(key, operation.value)
    if operation.kind is OpKind.UPDATE:
        return index.update(key, operation.value)
    if operation.kind is OpKind.DELETE:
        return index.delete(key)
    raise ValueError(f"unknown operation kind {operation.kind!r}")


@dataclass
class RunReport:
    """Everything an experiment needs to know about one workload run."""

    operations: int = 0
    lookups: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    lookup_hits: int = 0
    lookup_latencies_ms: List[float] = field(default_factory=list)
    insert_latencies_ms: List[float] = field(default_factory=list)
    lookup_flash_reads: List[int] = field(default_factory=list)
    simulated_duration_ms: float = 0.0

    @property
    def lookup_success_rate(self) -> float:
        """Observed LSR."""
        return self.lookup_hits / self.lookups if self.lookups else 0.0

    @property
    def mean_lookup_latency_ms(self) -> float:
        """Mean lookup latency."""
        if not self.lookup_latencies_ms:
            return 0.0
        return sum(self.lookup_latencies_ms) / len(self.lookup_latencies_ms)

    @property
    def mean_insert_latency_ms(self) -> float:
        """Mean insert/update latency."""
        if not self.insert_latencies_ms:
            return 0.0
        return sum(self.insert_latencies_ms) / len(self.insert_latencies_ms)

    @property
    def mean_latency_per_operation_ms(self) -> float:
        """Mean latency over every operation in the run (Table 3's metric)."""
        total = sum(self.lookup_latencies_ms) + sum(self.insert_latencies_ms)
        count = len(self.lookup_latencies_ms) + len(self.insert_latencies_ms)
        return total / count if count else 0.0

    @property
    def throughput_ops_per_second(self) -> float:
        """Operations per simulated second."""
        if self.simulated_duration_ms <= 0:
            return 0.0
        return self.operations / (self.simulated_duration_ms / 1000.0)

    def lookup_summary(self) -> LatencySummary:
        """Latency summary over lookups."""
        return summarize_latencies(self.lookup_latencies_ms)

    def insert_summary(self) -> LatencySummary:
        """Latency summary over inserts/updates."""
        return summarize_latencies(self.insert_latencies_ms)

    def flash_reads_histogram(self) -> Dict[int, float]:
        """Distribution of flash reads per lookup (Table 2's left column)."""
        if not self.lookup_flash_reads:
            return {}
        counts: Dict[int, int] = {}
        for reads in self.lookup_flash_reads:
            counts[reads] = counts.get(reads, 0) + 1
        total = len(self.lookup_flash_reads)
        return {reads: count / total for reads, count in sorted(counts.items())}


class WorkloadRunner:
    """Executes operation streams and collects latency/IO observations."""

    def __init__(self, index: HashIndex, clock=None) -> None:
        self.index = index
        # The clock is optional; when present the report includes simulated
        # wall-clock duration (every CLAM/baseline carries one).
        self.clock = clock if clock is not None else getattr(index, "clock", None)

    def run(
        self,
        operations: Iterable[Operation],
        keep_samples: bool = True,
        max_operations: Optional[int] = None,
        before_operation: Optional[Callable[[int, Operation], None]] = None,
    ) -> RunReport:
        """Execute ``operations`` in order and return a :class:`RunReport`.

        ``before_operation(index, operation)`` is invoked just before each
        dispatch — the failure-schedule hook point: a harness can kill, heal
        or recover a shard of a cluster-backed index at an exact operation
        count (see ``benchmarks/bench_failover.py`` and
        :class:`repro.service.simulator.FailureEvent` for the batched
        counterpart).
        """
        report = RunReport()
        start_ms = self.clock.now_ms if self.clock is not None else 0.0
        for index, operation in enumerate(operations):
            if max_operations is not None and index >= max_operations:
                break
            if before_operation is not None:
                before_operation(index, operation)
            result = apply_operation(self.index, operation)
            _record(report, operation, result, keep_samples)
        if self.clock is not None:
            report.simulated_duration_ms = self.clock.now_ms - start_ms
        return report

    def run_batched(
        self,
        operations: Iterable[Operation],
        batch_size: int = 64,
        keep_samples: bool = True,
        max_operations: Optional[int] = None,
        before_batch: Optional[Callable[[int, List[Operation]], None]] = None,
    ) -> RunReport:
        """Execute ``operations`` in fixed-size batches via ``execute_batch``.

        Requires the index to satisfy :class:`BatchHashIndex` (e.g. a
        :class:`repro.service.cluster.ClusterService`).  Per-operation results
        are folded into the same :class:`RunReport` shape as :meth:`run`, so
        sequential and batched executions of one workload compare directly.

        ``before_batch(batch_index, operations)`` fires just before each
        batch is dispatched — the batched failure-schedule hook point
        (mirror of :meth:`run`'s ``before_operation``).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        execute_batch = getattr(self.index, "execute_batch", None)
        if execute_batch is None:
            raise TypeError(
                f"{type(self.index).__name__} does not support batched execution"
            )
        report = RunReport()
        start_ms = self.clock.now_ms if self.clock is not None else 0.0
        pending: List[Operation] = []
        batch_index = 0
        for index, operation in enumerate(operations):
            if max_operations is not None and index >= max_operations:
                break
            pending.append(operation)
            if len(pending) >= batch_size:
                self._flush_batch(
                    execute_batch, pending, report, keep_samples, before_batch, batch_index
                )
                batch_index += 1
                pending = []
        if pending:
            self._flush_batch(
                execute_batch, pending, report, keep_samples, before_batch, batch_index
            )
        if self.clock is not None:
            report.simulated_duration_ms = self.clock.now_ms - start_ms
        return report

    @staticmethod
    def _flush_batch(
        execute_batch,
        pending: List[Operation],
        report: RunReport,
        keep_samples: bool,
        before_batch: Optional[Callable[[int, List[Operation]], None]] = None,
        batch_index: int = 0,
    ) -> None:
        if before_batch is not None:
            before_batch(batch_index, pending)
        batch = execute_batch(pending)
        for operation, result in zip(pending, batch.results):
            _record(report, operation, result, keep_samples)


def _record(report: RunReport, operation: Operation, result, keep_samples: bool) -> None:
    """Fold one operation's result record into the report."""
    report.operations += 1
    if operation.kind is OpKind.LOOKUP:
        report.lookups += 1
        if result.found:
            report.lookup_hits += 1
        if keep_samples:
            report.lookup_latencies_ms.append(result.latency_ms)
            report.lookup_flash_reads.append(result.flash_reads)
    elif operation.kind is OpKind.INSERT:
        report.inserts += 1
        if keep_samples:
            report.insert_latencies_ms.append(result.latency_ms)
    elif operation.kind is OpKind.UPDATE:
        report.updates += 1
        if keep_samples:
            report.insert_latencies_ms.append(result.latency_ms)
    elif operation.kind is OpKind.DELETE:
        report.deletes += 1
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown operation kind {operation.kind!r}")
