"""Latency metrics: summaries, percentiles and CDF/CCDF series.

The paper reports latency distributions as CDFs (Figures 6 and 7), CCDFs
(Figure 8a) and mean/worst-case numbers (§7.2, Table 3).  These helpers turn
raw per-operation latency samples into exactly those forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.flashsim.stats import percentile


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of latency samples (milliseconds)."""

    count: int
    mean_ms: float
    median_ms: float
    p90_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float
    min_ms: float

    def as_dict(self) -> dict:
        """Plain-dict view for table printing."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "median_ms": self.median_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_ms": self.max_ms,
            "min_ms": self.min_ms,
        }


def summarize_latencies(samples: Iterable[float]) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw latency samples."""
    data = sorted(samples)
    if not data:
        raise ValueError("cannot summarise an empty latency sample set")
    total = sum(data)
    return LatencySummary(
        count=len(data),
        mean_ms=total / len(data),
        median_ms=percentile(data, 0.5),
        p90_ms=percentile(data, 0.9),
        p99_ms=percentile(data, 0.99),
        p999_ms=percentile(data, 0.999),
        max_ms=data[-1],
        min_ms=data[0],
    )


def cdf_points(samples: Sequence[float], num_points: int = 50) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs suitable for plotting a CDF.

    Points are taken at evenly spaced quantiles so very long tails do not
    dominate the series.
    """
    if not samples:
        raise ValueError("cannot build a CDF from no samples")
    if num_points < 2:
        raise ValueError("num_points must be at least 2")
    data = sorted(samples)
    points: List[Tuple[float, float]] = []
    for i in range(num_points):
        fraction = i / (num_points - 1)
        points.append((percentile(data, fraction), fraction))
    return points


def ccdf_points(samples: Sequence[float], num_points: int = 50) -> List[Tuple[float, float]]:
    """(latency, complementary cumulative fraction) pairs (Figure 8a)."""
    return [(latency, max(0.0, 1.0 - fraction)) for latency, fraction in cdf_points(samples, num_points)]


def fraction_at_or_below(samples: Sequence[float], threshold_ms: float) -> float:
    """Fraction of samples with latency <= threshold (e.g. "62 % under 0.02 ms")."""
    if not samples:
        raise ValueError("cannot evaluate an empty sample set")
    return sum(1 for value in samples if value <= threshold_ms) / len(samples)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used for summarising improvement factors across objects."""
    data = [value for value in values if value > 0]
    if not data:
        raise ValueError("geometric_mean requires at least one positive value")
    return math.exp(sum(math.log(value) for value in data) / len(data))
