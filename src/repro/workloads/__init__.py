"""Workload generation and execution for the evaluation (§7 of the paper).

The paper's micro-benchmarks are sequences of lookups, inserts, updates and
deletes over randomly generated keys, with two knobs:

* the **lookup success rate (LSR)** — controlled by how often a looked-up key
  was previously inserted and is still retained;
* the **operation mix** — the fraction of lookups vs inserts (Table 3) and
  the update rate (Figure 8).

This package provides key generators, workload builders with those knobs,
latency metrics (CDF/CCDF summaries for Figures 6-8) and a runner that
executes a workload against any index exposing the common
``insert``/``lookup``/``update``/``delete`` API (CLAM or any baseline).
"""

from repro.workloads.keygen import (
    KeyGenerator,
    RandomKeyGenerator,
    SequentialKeyGenerator,
    ZipfKeyGenerator,
    fingerprint_for,
)
from repro.workloads.workload import (
    Operation,
    OpKind,
    WorkloadSpec,
    build_lookup_then_insert_workload,
    build_mixed_workload,
    build_update_workload,
    insert_operations,
    lookup_operations,
    preload_keys_for,
)
from repro.workloads.metrics import LatencySummary, summarize_latencies, cdf_points, ccdf_points
from repro.workloads.runner import (
    BatchHashIndex,
    HashIndex,
    RunReport,
    WorkloadRunner,
    apply_operation,
)

__all__ = [
    "KeyGenerator",
    "RandomKeyGenerator",
    "SequentialKeyGenerator",
    "ZipfKeyGenerator",
    "fingerprint_for",
    "Operation",
    "OpKind",
    "WorkloadSpec",
    "build_lookup_then_insert_workload",
    "build_mixed_workload",
    "build_update_workload",
    "preload_keys_for",
    "lookup_operations",
    "insert_operations",
    "LatencySummary",
    "summarize_latencies",
    "cdf_points",
    "ccdf_points",
    "RunReport",
    "WorkloadRunner",
    "HashIndex",
    "BatchHashIndex",
    "apply_operation",
]
