"""Key generators for synthetic hash-table workloads.

The systems the paper targets use fixed-width content fingerprints (SHA-1
hashes truncated to 8-20 bytes) as keys.  These generators produce such
fingerprint-like keys deterministically from a seed so that every experiment
is reproducible.
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Iterator, Optional


def fingerprint_for(identifier: int, length: int = 20, namespace: bytes = b"repro") -> bytes:
    """A deterministic SHA-1-style fingerprint for an integer identifier."""
    if length <= 0 or length > 20:
        raise ValueError("length must be in 1..20 (SHA-1 output size)")
    digest = hashlib.sha1(namespace + identifier.to_bytes(8, "big")).digest()
    return digest[:length]


class KeyGenerator(abc.ABC):
    """Produces a deterministic, seedable stream of keys."""

    def __init__(self, seed: int = 0, key_length: int = 20) -> None:
        self._rng = random.Random(seed)
        self.key_length = key_length

    @abc.abstractmethod
    def next_key(self) -> bytes:
        """The next key in the stream."""

    def keys(self, count: int) -> Iterator[bytes]:
        """Yield ``count`` keys."""
        for _ in range(count):
            yield self.next_key()


class SequentialKeyGenerator(KeyGenerator):
    """Fingerprints of 0, 1, 2, ... — every key is new (0 % natural hit rate)."""

    def __init__(self, seed: int = 0, key_length: int = 20, start: int = 0) -> None:
        super().__init__(seed=seed, key_length=key_length)
        self._next_id = start

    def next_key(self) -> bytes:
        key = fingerprint_for(self._next_id, self.key_length)
        self._next_id += 1
        return key


class RandomKeyGenerator(KeyGenerator):
    """Fingerprints of identifiers drawn uniformly from ``[0, key_space)``.

    A small key space relative to the number of operations produces repeated
    keys (and therefore lookup hits); a large one produces mostly unique keys.
    """

    def __init__(self, key_space: int, seed: int = 0, key_length: int = 20) -> None:
        if key_space <= 0:
            raise ValueError("key_space must be positive")
        super().__init__(seed=seed, key_length=key_length)
        self.key_space = key_space

    def next_key(self) -> bytes:
        return fingerprint_for(self._rng.randrange(self.key_space), self.key_length)


class ZipfKeyGenerator(KeyGenerator):
    """Zipf-distributed identifiers: a few hot keys, a long cold tail.

    Useful for exercising temporal locality (e.g. LRU eviction experiments);
    uses the classic rejection-free approximation over a bounded universe.
    """

    def __init__(
        self,
        key_space: int,
        skew: float = 1.1,
        seed: int = 0,
        key_length: int = 20,
        max_universe: Optional[int] = None,
    ) -> None:
        if key_space <= 0:
            raise ValueError("key_space must be positive")
        if skew <= 0:
            raise ValueError("skew must be positive")
        super().__init__(seed=seed, key_length=key_length)
        self.key_space = key_space
        self.skew = skew
        universe = min(key_space, max_universe or key_space, 100_000)
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(universe)]
        total = sum(weights)
        self._cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def next_key(self) -> bytes:
        target = self._rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        return fingerprint_for(low, self.key_length)
