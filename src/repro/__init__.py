"""repro: reproduction of "Cheap and Large CAMs for High Performance
Data-Intensive Networked Systems" (BufferHash / CLAM, NSDI 2010).

Subpackages
-----------
``repro.core``
    BufferHash and the CLAM facade (the paper's contribution).
``repro.flashsim``
    Simulated flash chips, SSDs, magnetic disks and DRAM.
``repro.baselines``
    Berkeley-DB-style external hash/B-tree indexes and other comparison points.
``repro.analysis``
    The paper's §6 analytical cost models and parameter tuning.
``repro.workloads``
    Key/workload generators and the workload runner used by the evaluation.
``repro.service``
    Sharded CLAM service layer: consistent-hash routing, batched execution,
    a cluster facade behind the single-index API, and a multi-client
    closed-loop traffic simulator.
``repro.wanopt``
    The WAN optimizer application (§8): chunking, fingerprint index, link model.
``repro.dedup``
    Data-deduplication index and index-merge experiment (§3).
``repro.directory``
    Content-name resolution directory backed by a CLAM (§3).
``repro.telemetry``
    Unified telemetry plane: metrics registry (mergeable latency
    histograms), span tracing on the simulated clocks, structured event
    log, JSON/Prometheus exporters and the snapshot schema validator.
"""

from repro import (
    analysis,
    baselines,
    core,
    dedup,
    directory,
    flashsim,
    service,
    telemetry,
    wanopt,
    workloads,
)

__version__ = "1.5.0"

__all__ = [
    "__version__",
    "analysis",
    "baselines",
    "core",
    "dedup",
    "directory",
    "flashsim",
    "service",
    "telemetry",
    "wanopt",
    "workloads",
]
