#!/usr/bin/env python3
"""Durable CLAM on a file-backed flash device: power cuts and crash recovery.

Run with::

    python examples/durable_clam.py

Demonstrates the durability layer: a :class:`~repro.core.recovery.DurableCLAM`
persisting to a single device file (`repro.flashsim.persistent`), a simulated
power cut torn mid-flush via the device fault injector, and the CLAM crash
recovery that reopens the file with every acknowledged write intact — plus
an honest report of what the cut may have cost (DRAM-buffered writes).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import CLAMConfig, DurableCLAM, PowerLossError
from repro.core.errors import DeviceFailedError
from repro.flashsim.device import DeviceGeometry

GEOM = DeviceGeometry(page_size=2048, pages_per_block=16, num_blocks=48)
CONFIG = CLAMConfig(
    num_super_tables=4,
    buffer_capacity_items=32,
    incarnations_per_table=8,
    checkpoint_interval_flushes=8,  # checkpoint every 8th incarnation flush
)


def create_and_close_cleanly(path: Path) -> None:
    print("=== Create, fill, close cleanly ===")
    with DurableCLAM(path, config=CONFIG, geometry=GEOM) as clam:
        for i in range(600):
            clam.insert(b"key-%04d" % i, b"value-%04d" % i)
        print(f"wrote 600 keys to {path.name}")
    with DurableCLAM(path, geometry=GEOM) as clam:  # config read from superblock
        report = clam.recovery_report
        print(
            f"reopen: clean_shutdown={report.clean_shutdown}, "
            f"checkpoint_seq={report.checkpoint_seq}, "
            f"recovered in {report.recovery_io_ms:.3f} simulated ms"
        )
        assert clam.lookup(b"key-0042").value == b"value-0042"
    print()


def power_cut_and_recover(path: Path) -> None:
    print("=== Power cut mid-workload ===")
    clam = DurableCLAM(path, geometry=GEOM)
    clam.persistent_device.faults.crash_after_n_ios(25)  # dies 25 page-I/Os in
    survived = 0
    try:
        for i in range(600, 1_200):
            clam.insert(b"key-%04d" % i, b"value-%04d" % i)
            survived = i + 1
    except (PowerLossError, DeviceFailedError):
        print(f"power lost during insert #{survived} — device is dead")
    clam.close()  # the crashed handle can only release the file

    with DurableCLAM(path, geometry=GEOM) as clam:
        report = clam.recovery_report
        print(
            f"recovery: clean_shutdown={report.clean_shutdown}, "
            f"torn_pages_discarded={report.torn_pages_discarded}, "
            f"log_records_replayed={report.log_records_replayed}, "
            f"entries_rebuilt={report.entries_rebuilt}"
        )
        if report.may_have_lost_buffered_writes:
            print("writes still buffered in DRAM at the cut were lost (as reported)")
        # Every write acknowledged before the cut is still readable.
        assert clam.lookup(b"key-0042").value == b"value-0042"
        recovered = sum(
            1 for i in range(1_200) if clam.lookup(b"key-%04d" % i).found
        )
        print(f"{recovered} keys readable after recovery; CLAM is fully usable:")
        clam.insert(b"post-recovery", b"works")
        print(f"  post-recovery insert/lookup: {clam.lookup(b'post-recovery').value!r}")
    print()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory(prefix="durable-clam-") as tmp:
        device_file = Path(tmp) / "example.clam"
        create_and_close_cleanly(device_file)
        power_cut_and_recover(device_file)
