#!/usr/bin/env python3
"""Branch offices sharing one replicated fingerprint index across the WAN.

Run with::

    python examples/branch_office_wanopt.py

Composes the two halves of the codebase: the §8 WAN optimizer (chunking,
fingerprint dedup, content cache, link model) on top of the sharded,
replicated CLAM service layer.  Three branch offices upload traffic with
overlapping content; each branch's compression engine reaches the shared
data-center :class:`~repro.service.cluster.ClusterService` with one batched
round trip per object, so a chunk uploaded by one branch is a reference for
every other branch.  Mid-run a shard is crash-stopped: requests fail over
along the preference lists (availability stays 1.0 at RF=2), a scheduled
recovery re-replicates the dead shard's keys, and the far side verifies
every object reassembles byte-exactly.
"""

from __future__ import annotations

from repro.core import CLAMConfig
from repro.service import FailureEvent
from repro.wanopt import (
    BranchTraceGenerator,
    MultiBranchThroughputTest,
    MultiBranchTopology,
)


def config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
    )


def main() -> None:
    print("=== Multi-branch WAN optimization over a replicated cluster ===")
    streams = BranchTraceGenerator(
        num_branches=3,
        objects_per_branch=12,
        mean_object_size=192 * 1024,
        shared_fraction=0.3,
        local_redundancy=0.2,
        shared_pool_size=300,
        seed=7,
    ).generate()
    topology = MultiBranchTopology(
        num_branches=3,
        link_mbps=100.0,
        num_shards=4,
        replication_factor=2,
        config=config(),
    )
    schedule = [
        FailureEvent(at_request=12, action="fail", shard_id="shard-2"),
        FailureEvent(at_request=28, action="recover"),
    ]
    print("3 branches -> 4 shards at RF=2; crash shard-2 at object 12, recover at 28\n")
    result = MultiBranchThroughputTest(topology).run(streams, schedule=schedule)

    for branch in result.branches:
        print(
            f"{branch.branch_id}: improvement {branch.effective_bandwidth_improvement:.2f}x, "
            f"dedup hit rate {branch.dedup_hit_rate:.2%} "
            f"({branch.cross_branch_matched} chunks matched from other branches)"
        )
    print()
    print(f"aggregate bandwidth improvement: {result.aggregate_bandwidth_improvement:.2f}x")
    print(
        f"fleet dedup hit rate: {result.dedup_hit_rate:.2%} "
        f"(cross-branch share: {result.cross_branch_hit_rate:.2%})"
    )
    print(
        f"availability through the crash: {result.availability:.3f} "
        f"({result.objects_pass_through} objects degraded to pass-through)"
    )
    print(
        f"reconstruction: {result.objects_reconstructed_exactly}/{result.objects_total} "
        f"objects byte-exact, {result.chunks_lost} chunks lost"
    )
    report = result.recovery_reports[0]
    print(
        f"recovery: removed {report.failed_shards}, re-replicated "
        f"{report.keys_re_replicated} keys ({report.keys_lost} lost)"
    )
    health = topology.cluster.stats.health()
    print(f"cluster health after the run: live={health['live_shards']}")


if __name__ == "__main__":
    main()
