#!/usr/bin/env python3
"""Eviction policies in action (§5.1.2 / §7.4 of the paper).

BufferHash evicts whole incarnations.  The default FIFO policy discards the
oldest incarnation outright; LRU re-inserts items on use so hot keys migrate
to newer incarnations; update-based and priority-based policies scan the
evicted incarnation and retain the entries that are still wanted, at the cost
of extra flash reads and occasional cascaded evictions.

Run with::

    python examples/eviction_policies.py
"""

from __future__ import annotations

from repro.core import CLAM, CLAMConfig, LRUEviction, PriorityBasedEviction


def _small_clam(policy_name="fifo", eviction_policy=None):
    config = CLAMConfig.scaled(
        num_super_tables=4,
        buffer_capacity_items=32,
        incarnations_per_table=4,
        eviction_policy_name=policy_name,
    )
    return CLAM(config, storage="transcend-ssd", eviction_policy=eviction_policy)


def fifo_demo() -> None:
    print("=== FIFO (default): oldest content ages out ===")
    clam = _small_clam("fifo")
    keys = [b"object-%04d" % i for i in range(2_000)]
    for key in keys:
        clam.insert(key, b"fingerprint-location")
    oldest_found = sum(1 for key in keys[:200] if clam.lookup(key).found)
    newest_found = sum(1 for key in keys[-200:] if clam.lookup(key).found)
    print(f"oldest 200 keys still present: {oldest_found}")
    print(f"newest 200 keys still present: {newest_found}")
    print(f"evictions performed: {clam.bufferhash.total_evictions}")
    print()


def lru_demo() -> None:
    print("=== LRU: frequently used keys keep getting re-inserted ===")
    clam = _small_clam(eviction_policy=LRUEviction())
    hot = [b"hot-%d" % i for i in range(20)]
    cold = [b"cold-%d" % i for i in range(20)]
    for key in hot + cold:
        clam.insert(key, b"v")
    for round_number in range(25):
        for key in hot:
            clam.lookup(key)  # touching a key re-inserts it (asynchronously)
        for i in range(60):
            clam.insert(b"churn-%d-%d" % (round_number, i), b"x")
    print(f"hot keys surviving:  {sum(1 for k in hot if clam.lookup(k).found)}/20")
    print(f"cold keys surviving: {sum(1 for k in cold if clam.lookup(k).found)}/20")
    print()


def update_demo() -> None:
    print("=== Update-based partial discard: only stale entries are dropped ===")
    clam = _small_clam("update")
    stable = [b"stable-%d" % i for i in range(20)]
    for key in stable:
        clam.insert(key, b"v1")
    volatile = [b"volatile-%d" % i for i in range(400)]
    for round_number in range(15):
        # Updating the volatile keys leaves stale copies on flash that the
        # update-based policy discards at eviction time, while the untouched
        # stable keys are retained and re-inserted.
        for key in volatile:
            clam.insert(key, b"round-%d" % round_number)
    print(f"stable keys surviving: {sum(1 for k in stable if clam.lookup(k).found)}/20")
    print(f"latest volatile value correct: "
          f"{clam.lookup(volatile[0]).value == b'round-14'}")
    histogram = clam.bufferhash.cascade_histogram()
    cascaded = sum(count for tried, count in histogram.items() if tried > 1)
    print(f"flushes with cascaded evictions: {cascaded} of {sum(histogram.values())}")
    print(f"mean insert latency: {clam.stats.mean_insert_latency_ms:.4f} ms "
          "(higher than FIFO's because evictions now scan flash)")
    print()


def priority_demo() -> None:
    print("=== Priority-based partial discard: keep what the application values ===")
    policy = PriorityBasedEviction(
        priority_fn=lambda key, value: float(value[:1] == b"H"),
        threshold=0.5,
        retain_top_k=64,  # loosened semantics (§7.4) to bound cascades
    )
    clam = _small_clam(eviction_policy=policy)
    for i in range(40):
        clam.insert(b"gold-%d" % i, b"H" + b"x" * 7)
    for i in range(3_000):
        clam.insert(b"bulk-%d" % i, b"L" + b"y" * 7)
    gold = sum(1 for i in range(40) if clam.lookup(b"gold-%d" % i).found)
    bulk = sum(1 for i in range(40) if clam.lookup(b"bulk-%d" % i).found)
    print(f"high-priority keys surviving: {gold}/40")
    print(f"early low-priority keys surviving: {bulk}/40")


if __name__ == "__main__":
    fifo_demo()
    lru_demo()
    update_demo()
    priority_demo()
