#!/usr/bin/env python3
"""Deduplication / online-backup demo (§3 of the paper).

Ingests two generations of a backup data set (the second largely overlapping
the first) through a CLAM-backed deduplication index, then performs the
paper's index-merge experiment: merging a branch-office index into the main
one on a CLAM versus on a Berkeley-DB-style disk index.

Run with::

    python examples/dedup_backup.py
"""

from __future__ import annotations

from repro.baselines import ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.dedup import ChunkStore, DedupIndex, merge_indexes
from repro.dedup.merge import scale_merge_time
from repro.flashsim import MagneticDisk, SSD, SimulationClock
from repro.wanopt.fingerprint import Chunk, fingerprint_bytes


def _backup_generation(generation: int, num_chunks: int, overlap_with_previous: float):
    """Chunk descriptors for one backup generation."""
    chunks = []
    carried = int(num_chunks * overlap_with_previous)
    for i in range(num_chunks):
        if i < carried and generation > 0:
            identity = b"gen-%d-chunk-%d" % (generation - 1, i)
        else:
            identity = b"gen-%d-chunk-%d" % (generation, i)
        chunks.append(Chunk(fingerprint=fingerprint_bytes(identity), size=8 * 1024))
    return chunks


def nightly_backups() -> None:
    """Two nightly backups: the second is ~80 % unchanged data."""
    print("=== Nightly backup deduplication ===")
    clock = SimulationClock()
    config = CLAMConfig.scaled(
        num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
    )
    clam = CLAM(config, storage=SSD(clock=clock))
    dedup = DedupIndex(clam, store=ChunkStore(MagneticDisk(clock=clock)))

    first_night = _backup_generation(0, num_chunks=3_000, overlap_with_previous=0.0)
    second_night = _backup_generation(1, num_chunks=3_000, overlap_with_previous=0.8)

    dedup.ingest(first_night)
    print(
        f"night 1: stored {dedup.stats.chunks_stored} chunks, "
        f"suppressed {dedup.stats.duplicates_suppressed} duplicates"
    )
    dedup.ingest(second_night)
    print(
        f"night 2: stored {dedup.stats.chunks_stored} chunks total, "
        f"suppressed {dedup.stats.duplicates_suppressed} duplicates, "
        f"dedup ratio {dedup.stats.dedup_ratio:.2f}x"
    )
    print(
        f"index time {dedup.stats.index_time_ms:.1f} ms, "
        f"chunk-store time {dedup.stats.store_time_ms:.1f} ms (simulated)"
    )
    print()


def index_merge_comparison() -> None:
    """The §3 merge experiment: CLAM vs BDB-on-disk, plus extrapolation."""
    print("=== Index merge: CLAM vs BerkeleyDB on disk ===")
    existing = [(fingerprint_bytes(b"main-%d" % i), b"addr") for i in range(3_000)]
    incoming = existing[:600] + [
        (fingerprint_bytes(b"branch-%d" % i), b"addr") for i in range(1_400)
    ]

    clam = CLAM(CLAMConfig.scaled(), storage="intel-ssd")
    for fingerprint, value in existing:
        clam.insert(fingerprint, value)
    clam_report = merge_indexes(clam, incoming)

    bdb = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=32)
    for fingerprint, value in existing:
        bdb.insert(fingerprint, value)
    bdb_report = merge_indexes(bdb, incoming)

    print(
        f"CLAM merge:       {clam_report.total_time_ms:8.1f} simulated ms "
        f"({clam_report.new_fingerprints} new / {clam_report.already_present} present)"
    )
    print(f"BDB merge:        {bdb_report.total_time_ms:8.1f} simulated ms")
    target = 100_000_000
    print(
        "extrapolated to a 100M-fingerprint merge: "
        f"CLAM ≈ {scale_merge_time(clam_report, len(incoming), target):.0f} min, "
        f"BDB ≈ {scale_merge_time(bdb_report, len(incoming), target) / 60:.1f} hours "
        "(the paper estimates <2 min vs ~2 hours)"
    )


if __name__ == "__main__":
    nightly_backups()
    index_merge_comparison()
