#!/usr/bin/env python3
"""Parameter-tuning advisor (§6.4 of the paper).

Given a DRAM budget, a flash budget and a device type, print the recommended
CLAM configuration — how to split DRAM between buffers and Bloom filters, how
many super tables to create — together with the analytical insertion and
lookup costs that configuration implies.

Run with::

    python examples/tuning_advisor.py
"""

from __future__ import annotations

from repro.analysis import (
    FLASH_CHIP_COSTS,
    INTEL_SSD_COSTS,
    TRANSCEND_SSD_COSTS,
    required_bloom_bits,
    tune,
)

GB = 1024**3
MB = 1024**2


def _human(size_bytes: float) -> str:
    if size_bytes >= GB:
        return f"{size_bytes / GB:.2f} GB"
    if size_bytes >= MB:
        return f"{size_bytes / MB:.1f} MB"
    return f"{size_bytes / 1024:.1f} KB"


def advise(name: str, params, flash_bytes: float, memory_bytes: float) -> None:
    report = tune(
        params,
        flash_bytes=flash_bytes,
        memory_bytes=memory_bytes,
        entry_size_bytes=32,  # 16-byte entries at 50% table utilisation, as in §6.4
        max_worst_case_insert_ms=5.0,
    )
    print(f"--- {name}: {_human(flash_bytes)} flash, {_human(memory_bytes)} DRAM ---")
    print(f"buffers total:        {_human(report.buffer_total_bytes)}")
    print(f"Bloom filters total:  {_human(report.bloom_total_bytes)}")
    print(f"per-buffer size:      {_human(report.per_buffer_bytes)}")
    print(f"super tables:         {report.num_super_tables:,}")
    print(f"incarnations/table:   {report.incarnations_per_table:.0f}")
    print(f"amortised insert:     {report.amortized_insert_ms * 1000:.2f} us")
    print(f"worst-case insert:    {report.worst_case_insert_ms:.2f} ms")
    print(f"expected lookup I/O:  {report.expected_lookup_io_ms:.3f} ms")
    bloom_for_1ms = required_bloom_bits(params, flash_bytes, 1.0, 32) / 8
    print(f"Bloom memory for <1ms lookup overhead: {_human(bloom_for_1ms)}")
    print()


def main() -> None:
    # The paper's configuration: 4 GB DRAM and 32 GB of flash (§7.1.1).
    advise("Intel SSD (paper config)", INTEL_SSD_COSTS, 32 * GB, 4 * GB)
    # A cheaper, slower SSD with the same budgets.
    advise("Transcend SSD (paper config)", TRANSCEND_SSD_COSTS, 32 * GB, 4 * GB)
    # A raw flash chip in an embedded-style deployment.
    advise("Raw flash chip", FLASH_CHIP_COSTS, 8 * GB, 1 * GB)
    # A larger, next-generation deployment (the 100 GB+ tables of §1).
    advise("Intel SSD (128 GB index)", INTEL_SSD_COSTS, 128 * GB, 8 * GB)


if __name__ == "__main__":
    main()
