#!/usr/bin/env python3
"""Sharded CLAM cluster: routing, batching, elastic scaling and skewed traffic.

Run with::

    python examples/sharded_cluster.py

Demonstrates the ``repro.service`` layer: a 4-shard cluster behind the
familiar single-index API, batched execution amortising dispatch overhead,
exact key-range handoff stats when shards join or leave, and a closed-loop
multi-client traffic simulation with hot-shard detection.
"""

from __future__ import annotations

from repro.core import CLAMConfig
from repro.service import ClusterService, TrafficSimulator, TrafficSpec
from repro.workloads import WorkloadRunner, WorkloadSpec, build_mixed_workload


def config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
    )


def cluster_as_a_single_index() -> None:
    """A whole cluster drives like one CLAM — same API, same runner."""
    print("=== A 4-shard cluster behind the single-index API ===")
    cluster = ClusterService(num_shards=4, config=config(), storage="intel-ssd")

    cluster.insert(b"fingerprint-1", b"chunk-address-1")
    hit = cluster.lookup(b"fingerprint-1")
    print(
        f"hit: value={hit.value!r} latency={hit.latency_ms:.4f} ms "
        f"(owner: {cluster.shard_for(b'fingerprint-1')})"
    )

    operations = build_mixed_workload(WorkloadSpec(num_keys=4_000, seed=3))
    report = WorkloadRunner(cluster).run(operations)
    print(
        "runner over the cluster: %d ops, lookup %.4f ms mean, %.0f ops/s"
        % (
            report.operations,
            report.mean_lookup_latency_ms,
            report.throughput_ops_per_second,
        )
    )
    loads = cluster.stats.operations_per_shard()
    print("per-shard load: " + ", ".join(f"{s}={int(n)}" for s, n in sorted(loads.items())))
    print(f"imbalance factor: {cluster.stats.imbalance_factor():.2f}")
    print()


def batching_amortises_dispatch() -> None:
    """Same workload, sequential vs batched: identical answers, less overhead."""
    print("=== Batched vs sequential execution ===")
    operations = build_mixed_workload(WorkloadSpec(num_keys=4_000, seed=5))

    sequential = WorkloadRunner(ClusterService(num_shards=4, config=config()))
    seq_report = sequential.run(operations)
    batched = WorkloadRunner(ClusterService(num_shards=4, config=config()))
    batch_report = batched.run_batched(operations, batch_size=64)

    assert batch_report.lookup_hits == seq_report.lookup_hits
    print(f"identical results: {batch_report.lookup_hits} lookup hits either way")
    print(
        "simulated duration: sequential %.1f ms vs batched %.1f ms (%.0f%% saved)"
        % (
            seq_report.simulated_duration_ms,
            batch_report.simulated_duration_ms,
            100
            * (1 - batch_report.simulated_duration_ms / seq_report.simulated_duration_ms),
        )
    )

    one_batch = batched.index.execute_batch(operations[:64])
    print(
        "one 64-op batch: %d shards touched, makespan %.4f ms, dispatch saved %.3f ms"
        % (one_batch.shards_touched, one_batch.makespan_ms, one_batch.dispatch_saved_ms)
    )
    print()


def elastic_scaling() -> None:
    """Consistent hashing keeps handoffs small when the fleet changes size."""
    print("=== Adding and removing shards ===")
    cluster = ClusterService(num_shards=4, config=config())
    handoff = cluster.add_shard()
    print(
        "add shard-4:    %.1f%% of the key space moves (all gained by the new shard)"
        % (100 * handoff.moved_fraction)
    )
    print(
        "                e.g. ~%d of 1M uniformly hashed keys"
        % handoff.estimated_keys_moved(1_000_000)
    )
    handoff = cluster.remove_shard("shard-2")
    print(
        "remove shard-2: %.1f%% moves, redistributed to %s"
        % (100 * handoff.moved_fraction, sorted(handoff.gained_fraction))
    )
    print(f"fleet is now: {', '.join(cluster.shard_ids)}")
    print()


def skewed_traffic_simulation() -> None:
    """Closed-loop clients with Zipf skew expose hot shards."""
    print("=== Multi-client Zipf traffic and hot-shard detection ===")
    cluster = ClusterService(num_shards=8, config=config())
    spec = TrafficSpec(
        num_clients=16,
        requests_per_client=40,
        batch_size=8,
        lookup_fraction=0.6,
        update_fraction=0.1,
        key_space=4_000,
        zipf_skew=1.4,
        seed=9,
    )
    simulator = TrafficSimulator(cluster, spec)
    simulator.warmup(1_000)
    report = simulator.run()
    summary = report.request_latency_summary()
    print(
        "%d clients x %d requests: %.0f ops/s, request p50 %.4f ms, p99 %.4f ms"
        % (
            spec.num_clients,
            spec.requests_per_client,
            report.throughput_ops_per_second,
            summary.median_ms,
            summary.p99_ms,
        )
    )
    print(f"lookup hit rate: {100 * report.lookup_success_rate:.0f}%")
    print(
        "shard load: "
        + ", ".join(f"{s}={n}" for s, n in sorted(report.ops_per_shard.items()))
    )
    print(
        f"imbalance {report.imbalance_factor:.2f}, hot shards: "
        + (", ".join(report.hot_shards) or "none")
    )
    print()


if __name__ == "__main__":
    cluster_as_a_single_index()
    batching_amortises_dispatch()
    elastic_scaling()
    skewed_traffic_simulation()
