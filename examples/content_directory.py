#!/usr/bin/env python3
"""Central directory for a data-oriented network (§3 of the paper).

Content names (hashes of data chunks) are resolved to the hosts currently
advertising them.  The directory must absorb a high rate of publishes (as
new sources appear) and resolutions (as clients fetch data) over a name
space far larger than DRAM — the CLAM use case.

Run with::

    python examples/content_directory.py
"""

from __future__ import annotations

import random

from repro.core import CLAM, CLAMConfig
from repro.directory import ContentDirectory
from repro.workloads import fingerprint_for


def main() -> None:
    rng = random.Random(7)
    config = CLAMConfig.scaled(
        num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
    )
    directory = ContentDirectory(CLAM(config, storage="intel-ssd"))

    hosts = [f"host-{i:02d}.example.net" for i in range(20)]
    names = [fingerprint_for(i, namespace=b"content") for i in range(4_000)]

    # Publishers advertise content as it is created or replicated.
    print("publishing 6,000 (name, host) registrations ...")
    publish_latency = 0.0
    for _ in range(6_000):
        name = names[rng.randrange(len(names))]
        host = hosts[rng.randrange(len(hosts))]
        publish_latency += directory.publish(name, host).latency_ms
    print(f"mean publish latency: {publish_latency / 6_000:.4f} simulated ms")

    # Clients resolve names to locations.
    print("resolving 3,000 content names ...")
    resolve_latency = 0.0
    found = 0
    for _ in range(3_000):
        name = names[rng.randrange(len(names))]
        result = directory.resolve(name)
        resolve_latency += result.latency_ms
        if result.found:
            found += 1
    print(f"mean resolve latency: {resolve_latency / 3_000:.4f} simulated ms")
    print(f"resolution hit rate:  {found / 3_000:.0%}")

    # Sources leaving the network withdraw their registrations.
    sample_name = names[0]
    before = directory.resolve(sample_name).hosts
    if before:
        directory.withdraw(sample_name, before[0])
        after = directory.resolve(sample_name).hosts
        print(f"withdraw example: {len(before)} -> {len(after)} hosts for one name")

    throughput = directory.index.throughput_ops_per_second()
    print(f"index throughput: {throughput:,.0f} hash operations per simulated second")


if __name__ == "__main__":
    main()
