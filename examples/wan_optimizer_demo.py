#!/usr/bin/env python3
"""WAN optimizer demo (§8 of the paper).

Builds a WAN optimizer whose fingerprint index is a CLAM on a Transcend-like
SSD, replays a synthetic trace with ~50 % redundant bytes through it at
several link speeds, and compares against the same optimizer built on a
Berkeley-DB-style index.  Also shows the full real-payload path (Rabin
chunking + SHA-1 fingerprints) on a small object set.

Run with::

    python examples/wan_optimizer_demo.py
"""

from __future__ import annotations

from repro.baselines import ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.flashsim import MagneticDisk, SSD, SimulationClock, TRANSCEND_SSD_PROFILE
from repro.wanopt import (
    CompressionEngine,
    ContentCache,
    Link,
    SyntheticTraceGenerator,
    WANOptimizer,
    build_payload_objects,
)


def _make_optimizer(index_kind: str, link_mbps: float):
    clock = SimulationClock()
    ssd = SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock)
    if index_kind == "clam":
        config = CLAMConfig.scaled(
            num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
        )
        index = CLAM(config, storage=ssd)
    else:
        index = ExternalHashIndex(ssd, cache_pages=32)
    engine = CompressionEngine(index=index, content_cache=ContentCache(MagneticDisk(clock=clock)))
    link = Link(bandwidth_mbps=link_mbps, clock=clock)
    return WANOptimizer(engine=engine, link=link, clock=clock)


def throughput_sweep() -> None:
    """Effective-bandwidth improvement vs link speed (Figure 9's shape)."""
    print("=== Effective bandwidth improvement (50% redundant trace) ===")
    objects = SyntheticTraceGenerator(
        redundancy=0.5, num_objects=25, mean_object_size=128 * 1024, seed=3
    ).generate()
    print(f"{'link (Mbps)':>12} {'CLAM index':>12} {'BDB index':>12} {'ideal':>8}")
    for link_mbps in (10, 100, 200, 400):
        clam_result = _make_optimizer("clam", link_mbps).run_throughput_test(objects)
        bdb_result = _make_optimizer("bdb", link_mbps).run_throughput_test(objects)
        print(
            f"{link_mbps:>12} "
            f"{clam_result.effective_bandwidth_improvement:>12.2f} "
            f"{bdb_result.effective_bandwidth_improvement:>12.2f} "
            f"{clam_result.ideal_improvement:>8.2f}"
        )
    print()


def real_payload_pipeline() -> None:
    """Run real bytes through Rabin chunking, SHA-1 and the full pipeline."""
    print("=== Real-payload pipeline (Rabin chunking + SHA-1) ===")
    objects = build_payload_objects(
        num_objects=4, object_size=48 * 1024, redundancy=0.5, average_chunk_size=4096, seed=11
    )
    clock = SimulationClock()
    clam = CLAM(CLAMConfig.scaled(), storage=SSD(clock=clock))
    engine = CompressionEngine(index=clam, content_cache=ContentCache(MagneticDisk(clock=clock)))
    for obj in objects:
        result = engine.process_object(obj)
        print(
            f"object {obj.object_id}: {result.original_bytes:>6} B -> {result.compressed_bytes:>6} B "
            f"({result.chunks_matched}/{result.chunks_total} chunks matched, "
            f"processing {result.processing_time_ms:.2f} ms)"
        )
    print(f"overall compression ratio: {engine.overall_compression_ratio:.2f}x")
    print()


def high_load_per_object() -> None:
    """Per-object throughput improvement under heavy load (Figure 10's shape)."""
    print("=== Per-object improvement under heavy load (10 Mbps link) ===")
    objects = SyntheticTraceGenerator(
        redundancy=0.5, num_objects=15, mean_object_size=256 * 1024, seed=5
    ).generate()
    optimizer = _make_optimizer("clam", link_mbps=10.0)
    result = optimizer.run_high_load_test(objects)
    for obj in result.objects[:8]:
        print(
            f"object {obj.object_id}: {obj.size_bytes // 1024:>5} KB, "
            f"improvement {obj.throughput_improvement:.2f}x"
        )
    print(f"mean improvement: {result.mean_throughput_improvement:.2f}x")


if __name__ == "__main__":
    throughput_sweep()
    real_payload_pipeline()
    high_load_per_object()
