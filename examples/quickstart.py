#!/usr/bin/env python3
"""Quickstart: build a CLAM, drive it with a workload, compare with Berkeley-DB.

Run with::

    python examples/quickstart.py

Everything is simulated: latencies are the simulated device times described
in DESIGN.md, so this runs in seconds on a laptop while exhibiting the same
relative behaviour the paper measured on real SSDs.
"""

from __future__ import annotations

from repro.baselines import ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.flashsim import MagneticDisk, SimulationClock
from repro.workloads import WorkloadRunner, WorkloadSpec, build_lookup_then_insert_workload


def basic_usage() -> None:
    """The smallest possible CLAM program."""
    print("=== Basic usage ===")
    clam = CLAM(CLAMConfig.scaled(), storage="intel-ssd")

    clam.insert(b"fingerprint-1", b"chunk-address-1")
    clam.insert(b"fingerprint-2", b"chunk-address-2")

    hit = clam.lookup(b"fingerprint-1")
    miss = clam.lookup(b"fingerprint-999")
    print(f"hit:  value={hit.value!r} latency={hit.latency_ms:.4f} ms (from {hit.served_from.value})")
    print(f"miss: found={miss.found} latency={miss.latency_ms:.4f} ms")

    clam.delete(b"fingerprint-1")
    print(f"after delete: found={clam.lookup(b'fingerprint-1').found}")
    print()


def steady_state_comparison() -> None:
    """Run the paper's default workload against a CLAM and a BDB-style index."""
    print("=== Steady-state workload: CLAM vs Berkeley-DB on disk ===")
    config = CLAMConfig.scaled(
        num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
    )
    spec = WorkloadSpec(
        num_keys=6_000,
        target_lsr=0.4,
        recency_window=int(config.total_items_capacity(8) * 0.8),
        seed=1,
    )
    operations = build_lookup_then_insert_workload(spec)

    clam = CLAM(config, storage="intel-ssd")
    clam_report = WorkloadRunner(clam).run(operations)

    bdb = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=32)
    bdb_report = WorkloadRunner(bdb).run(operations, max_operations=4_000)

    print(
        "CLAM  (Intel SSD): lookup %.4f ms, insert %.4f ms, hit rate %.0f%%"
        % (
            clam_report.mean_lookup_latency_ms,
            clam_report.mean_insert_latency_ms,
            100 * clam_report.lookup_success_rate,
        )
    )
    print(
        "BDB   (disk):      lookup %.3f ms, insert %.3f ms"
        % (bdb_report.mean_lookup_latency_ms, bdb_report.mean_insert_latency_ms)
    )
    speedup = bdb_report.mean_lookup_latency_ms / clam_report.mean_lookup_latency_ms
    print(f"lookup speedup: {speedup:.0f}x  (the paper reports ~2 orders of magnitude)")
    print()


def inspecting_internals() -> None:
    """Peek at the BufferHash internals the CLAM is built on."""
    print("=== BufferHash internals ===")
    clam = CLAM(
        CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64, incarnations_per_table=4),
        storage="transcend-ssd",
    )
    for i in range(2_000):
        clam.insert(b"key-%d" % i, b"value-%d" % i)
    bufferhash = clam.bufferhash
    print(f"super tables:      {len(bufferhash.tables)}")
    print(f"buffer flushes:    {bufferhash.total_flushes}")
    print(f"incarnations live: {bufferhash.total_incarnations}")
    print(f"evictions:         {bufferhash.total_evictions}")
    print(f"summary:           {clam.describe()}")
    print()


if __name__ == "__main__":
    basic_usage()
    steady_state_comparison()
    inspecting_internals()
