#!/usr/bin/env python3
"""Replicated cluster surviving a shard crash: failover, read-repair, recovery.

Run with::

    python examples/failover_cluster.py

Demonstrates the fault-tolerance layer of ``repro.service``: replica
placement on the router's preference lists, device-level fault injection
(:mod:`repro.flashsim.faults`), reads and writes failing over to surviving
replicas, read-repair backfilling a healed shard, and the
:class:`~repro.service.recovery.RecoveryCoordinator` re-replicating a dead
shard's key ranges along the exact handoff arcs.
"""

from __future__ import annotations

from repro.core import CLAMConfig
from repro.service import ClusterService, RecoveryCoordinator
from repro.workloads import fingerprint_for


def config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
    )


def build_cluster() -> ClusterService:
    return ClusterService(num_shards=4, config=config(), replication_factor=2)


def replica_placement() -> ClusterService:
    """Every key lives on the first two distinct shards of its ring walk."""
    print("=== Replica placement (replication_factor=2) ===")
    cluster = build_cluster()
    for identifier in range(1_000):
        key = fingerprint_for(identifier)
        cluster.insert(key, b"chunk-%d" % identifier)
    key = fingerprint_for(0)
    replicas = cluster.replicas_for(key)
    print(f"key 0 preference list: {replicas} (primary first)")
    for shard_id in replicas:
        held = cluster.shards[shard_id].lookup(key).found
        print(f"  {shard_id} holds a copy: {held}")
    print()
    return cluster


def crash_and_failover(cluster: ClusterService) -> str:
    """A crash-stopped shard is detected, marked down and routed around."""
    print("=== Crash-stop and failover ===")
    victim = cluster.shard_for(fingerprint_for(0))
    cluster.fail_shard(victim)  # deterministic device-level fault injection
    print(f"crashed {victim}; cluster does not know yet: down={cluster.down_shard_ids}")
    hit = cluster.lookup(fingerprint_for(0))  # fails over to the surviving replica
    print(f"lookup during outage: found={hit.found} (served by a surviving replica)")
    print(f"after one error the shard is down: down={cluster.down_shard_ids}")
    missing = sum(
        1 for i in range(1_000) if not cluster.lookup(fingerprint_for(i)).found
    )
    print(f"keys unreadable during the outage: {missing} of 1000")
    print()
    return victim


def recover(cluster: ClusterService, victim: str) -> None:
    """Recovery removes the dead shard and restores full replication."""
    print("=== Recovery ===")
    coordinator = RecoveryCoordinator(cluster)
    print(f"detected failed shards: {coordinator.detect()}")
    report = coordinator.recover()
    print(
        "re-replicated %d of %d affected keys (%d copies, %d lost) in %.2f ms of work"
        % (
            report.keys_re_replicated,
            report.keys_affected,
            report.copies_written,
            report.keys_lost,
            report.work_ms,
        )
    )
    handoff = report.handoffs[0]
    print(
        "%s's arcs (%.1f%% of the key space) handed to: %s"
        % (victim, 100 * handoff.moved_fraction, sorted(handoff.gained_fraction))
    )
    full = sum(
        1
        for i in range(1_000)
        if all(
            cluster.shards[s].lookup(fingerprint_for(i)).found
            for s in cluster.replicas_for(fingerprint_for(i))
        )
    )
    print(f"keys back at full replication on the survivors: {full} of 1000")
    health = cluster.stats.health()
    print(f"health: live={health['live_shards']} recoveries={health['recoveries']}")
    print()


def transient_failure_and_read_repair() -> None:
    """A healed shard missed writes; read-repair backfills them on access."""
    print("=== Transient failure, heal and read-repair ===")
    cluster = build_cluster()
    key = fingerprint_for(7, namespace=b"transient")
    primary = cluster.replicas_for(key)[0]
    cluster.fail_shard(primary)
    cluster.lookup(fingerprint_for(0, namespace=b"detect"))  # trip the error counter
    cluster.insert(key, b"written-during-outage")  # lands on the survivor only
    cluster.heal_shard(primary)
    print(f"{primary} healed; has the key: {cluster.shards[primary].lookup(key).found}")
    hit = cluster.lookup(key)
    print(
        f"cluster lookup: found={hit.found}; read-repairs performed: "
        f"{cluster.read_repairs}"
    )
    print(f"{primary} now has the key: {cluster.shards[primary].lookup(key).found}")
    print()


if __name__ == "__main__":
    cluster = replica_placement()
    victim = crash_and_failover(cluster)
    recover(cluster, victim)
    transient_failure_and_read_repair()
