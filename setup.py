"""Setup shim so that editable installs work without the 'wheel' package.

The environment has no network access and no `wheel` distribution, so PEP 660
editable installs (which need to build a wheel) fail.  `python setup.py
develop` / `pip install -e . --no-build-isolation` with this shim falls back
to the classic setuptools develop path.
"""
from setuptools import setup

setup()
