"""Packaging for the BufferHash/CLAM reproduction.

The package lives under ``src/`` (``package_dir`` below), so after
``pip install -e .`` the ``repro`` package imports without any manual
``PYTHONPATH=src``.  The environment this repo is developed in has no network
access and no ``wheel`` distribution, so PEP 660 editable installs (which
build a wheel) can fail; the classic ``python setup.py develop`` falls back
to the setuptools develop path.

The library itself is dependency-free (pure standard library); ``pytest`` and
``pytest-benchmark`` are only needed for the test suite and the benchmarks
(``pip install -e .[dev]``).
"""
from setuptools import find_packages, setup

setup(
    name="repro-bufferhash",
    version="1.7.0",
    description=(
        "Reproduction of 'Cheap and Large CAMs for High Performance "
        "Data-Intensive Networked Systems' (BufferHash/CLAM, NSDI 2010) "
        "with a sharded, replicated, failure-tolerant service layer, a "
        "multi-branch WAN-optimizer deployment, traffic simulator and a "
        "unified telemetry plane (metrics, tracing, event log)"
    ),
    long_description=__doc__,
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.telemetry": ["telemetry_schema.json"]},
    python_requires=">=3.10",  # int.bit_count in the Bloom filter hot path
    install_requires=[],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "numpy"],
        # Optional accelerator for the vectorised Rabin chunker; the package
        # works without it (the table-driven scalar path is pure stdlib).
        "fast": ["numpy"],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
        "Topic :: System :: Filesystems",
        "Intended Audience :: Science/Research",
    ],
)
