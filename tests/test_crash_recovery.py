"""CLAM crash recovery: power cuts at every I/O boundary lose no acknowledged write.

The acknowledged-write contract under test:

* a write is **acknowledged** once the incarnation flush containing it
  completed — after a crash, every item of every incarnation the (crashed)
  CLAM still listed must be readable from the reopened CLAM;
* writes still buffered in DRAM (including a flush the power cut tore) are
  **not** acknowledged and may be lost — the reopened CLAM reports this via
  ``recovery_report.may_have_lost_buffered_writes``.

The sweep test drives the same deterministic workload with a power cut armed
at I/O unit 1, 2, 3, ... n for every reachable n, covering cuts inside
streaming incarnation writes (torn pages), inside block erases (interrupted
erases), inside checkpoint writes and on reads.
"""

import os

import pytest

from repro.core import CLAMConfig, DurableCLAM, PowerLossError
from repro.core.errors import ConfigurationError, DeviceFailedError
from repro.core.hashing import key_data
from repro.core.incarnation import iter_page_entries
from repro.flashsim.device import DeviceGeometry
from repro.flashsim.faults import FaultMode
from repro.service.cluster import ClusterService
from repro.service.recovery import RecoveryCoordinator

# Tiny geometry so the deterministic workload reaches wrap-around, releases
# and erases within a few hundred I/O units.
GEOM = DeviceGeometry(page_size=1024, pages_per_block=8, num_blocks=16)
CFG = CLAMConfig(
    num_super_tables=2,
    buffer_capacity_items=8,
    incarnations_per_table=2,
    checkpoint_interval_flushes=4,
)
COLD_CFG = CLAMConfig(
    num_super_tables=2,
    buffer_capacity_items=8,
    incarnations_per_table=2,
)
N_OPS = 260


def key(i):
    return b"key-%04d" % i


def value(i):
    return b"val-%04d" % i


def run_workload(path, crash_at=None, config=CFG, n_ops=N_OPS):
    """Deterministic insert/lookup/delete mix; returns (clam, error)."""
    clam = DurableCLAM(path, config=config, geometry=GEOM)
    if crash_at is not None:
        clam.persistent_device.faults.crash_after_n_ios(crash_at)
    error = None
    try:
        for i in range(n_ops):
            clam.insert(key(i), value(i))
            if i % 17 == 0:
                clam.lookup(key(i // 2))
            if i and i % 23 == 0:
                clam.delete(key(i - 2))
        clam.close()
    except (PowerLossError, DeviceFailedError) as err:
        error = err
    return clam, error


def acknowledged_items(clam):
    """God's-eye oracle: items of every incarnation the CLAM still lists.

    Incarnation handles are registered in DRAM only *after* their streaming
    write returned, so at crash time they enumerate exactly the acknowledged
    (durable) state.  Pages are read via ``peek_page`` straight off the
    media image, bypassing the dead device's fault gate.
    """
    device = clam.persistent_device
    acked = {}
    for table in clam.bufferhash.tables:
        deleted = set(table.delete_list_snapshot())
        for handle in table.incarnation_handles:
            for offset in range(handle.num_pages):
                image = device.peek_page(handle.address + offset)
                assert image is not None, "acknowledged incarnation page damaged on media"
                for k, v in iter_page_entries(image):
                    if k not in deleted:
                        acked[k] = v
    return acked


def total_io_units(tmp_path):
    """I/O units the uncrashed workload (including clean close) performs."""
    path = tmp_path / "dry.clam"
    clam, error = run_workload(path)
    assert error is None
    sentinel = 10**9
    # Count with a fresh run and an armed-but-unreachable countdown.
    path2 = tmp_path / "dry2.clam"
    clam2 = DurableCLAM(path2, config=CFG, geometry=GEOM)
    clam2.persistent_device.faults.crash_after_n_ios(sentinel)
    injector = clam2.persistent_device.faults
    for i in range(N_OPS):
        clam2.insert(key(i), value(i))
        if i % 17 == 0:
            clam2.lookup(key(i // 2))
        if i and i % 23 == 0:
            clam2.delete(key(i - 2))
    clam2.close()
    return sentinel - injector._power_countdown


class TestCrashSweep:
    def test_power_cut_at_every_io_boundary_loses_no_acknowledged_write(self, tmp_path):
        """The headline robustness property, exhaustively over crash points."""
        total = total_io_units(tmp_path)
        assert total > 50, "workload too small to exercise interesting crash points"
        cut_modes = set()
        reports = []
        path = tmp_path / "sweep.clam"
        for n in range(1, total + 1):
            if path.exists():
                os.unlink(path)
            crashed, error = run_workload(path, crash_at=n)
            assert error is not None, f"cut at unit {n} never fired (total={total})"
            cut_modes.add(crashed.persistent_device.faults.mode)
            acked = acknowledged_items(crashed)
            crashed.close()

            with DurableCLAM(path, geometry=GEOM) as reopened:
                report = reopened.recovery_report
                assert report is not None
                reports.append(report)
                for k, v in acked.items():
                    result = reopened.lookup(k)
                    assert result.found and result.value == v, (
                        f"cut at unit {n}: acknowledged key {k!r} lost "
                        f"(report: {report})"
                    )
                # The reopened CLAM is fully operational.
                reopened.insert(b"probe", b"probe-value")
                assert reopened.lookup(b"probe").value == b"probe-value"

        # The sweep must actually have reached every power-loss state.
        assert FaultMode.TORN_WRITE in cut_modes
        assert FaultMode.INTERRUPTED_ERASE in cut_modes
        assert FaultMode.POWER_LOST in cut_modes  # a cut on a read path
        assert any(r.torn_pages_discarded for r in reports)
        assert any(r.interrupted_erase_blocks for r in reports)
        assert any(r.incarnations_from_checkpoint for r in reports)
        assert any(r.log_records_replayed for r in reports)


class TestDurableCLAM:
    def test_clean_shutdown_roundtrip_loses_nothing(self, tmp_path):
        path = tmp_path / "clean.clam"
        with DurableCLAM(path, config=CFG, geometry=GEOM) as clam:
            assert clam.recovery_report is None  # fresh create
            for i in range(30):
                clam.insert(key(i), value(i))
        with DurableCLAM(path, geometry=GEOM) as clam:
            report = clam.recovery_report
            assert report.clean_shutdown
            assert not report.may_have_lost_buffered_writes
            for i in range(30):
                assert clam.lookup(key(i)).value == value(i)

    def test_unclean_shutdown_reports_possible_buffered_loss(self, tmp_path):
        path = tmp_path / "dirty.clam"
        clam = DurableCLAM(path, config=CFG, geometry=GEOM)
        for i in range(30):
            clam.insert(key(i), value(i))
        buffered = {
            key_data(k)
            for table in clam.bufferhash.tables
            for k in table.buffer.items()
        }
        assert buffered  # some writes were still DRAM-only
        clam.persistent_device.faults.crash()  # hard stop: no flush, no checkpoint
        clam.close()
        with DurableCLAM(path, geometry=GEOM) as clam:
            report = clam.recovery_report
            assert not report.clean_shutdown
            assert report.may_have_lost_buffered_writes
            for k in buffered:
                assert not clam.lookup(k).found

    def test_checkpoint_shortens_recovery_versus_cold_rebuild(self, tmp_path):
        # Deep incarnation chains so a cold rebuild has real work to do; the
        # checkpoint restores all but the post-checkpoint suffix for free.
        ckpt_cfg = CLAMConfig(
            num_super_tables=2,
            buffer_capacity_items=8,
            incarnations_per_table=8,
            checkpoint_interval_flushes=4,
        )
        cold_cfg = CLAMConfig(
            num_super_tables=2,
            buffer_capacity_items=8,
            incarnations_per_table=8,
        )
        results = {}
        for label, config in (("ckpt", ckpt_cfg), ("cold", cold_cfg)):
            # Dry run to learn the config's total I/O units, then cut late in
            # the run so both variants crash with comparable durable state.
            sentinel = 10**9
            dry = DurableCLAM(tmp_path / f"{label}-dry.clam", config=config, geometry=GEOM)
            dry.persistent_device.faults.crash_after_n_ios(sentinel)
            injector = dry.persistent_device.faults
            for i in range(N_OPS):
                dry.insert(key(i), value(i))
            dry.close()
            crash_at = (sentinel - injector._power_countdown) * 4 // 5
            path = tmp_path / f"{label}.clam"
            crashed, error = run_workload(path, crash_at=crash_at, config=config)
            assert error is not None
            crashed.close()
            with DurableCLAM(path, geometry=GEOM) as reopened:
                results[label] = reopened.recovery_report
        assert results["ckpt"].checkpoint_seq is not None
        assert results["ckpt"].incarnations_from_checkpoint > 0
        assert results["cold"].checkpoint_seq is None
        assert results["cold"].log_records_replayed > 0
        # Checkpoint restores Bloom filters without reading data pages, so
        # its simulated recovery I/O must be cheaper than the cold rebuild.
        assert results["ckpt"].recovery_io_ms < results["cold"].recovery_io_ms
        assert results["ckpt"].entries_rebuilt < results["cold"].entries_rebuilt

    def test_recovery_events_recorded(self, tmp_path):
        path = tmp_path / "events.clam"
        crashed, error = run_workload(path, crash_at=60)
        assert error is not None
        crashed.close()
        with DurableCLAM(path, geometry=GEOM) as clam:
            kinds = [event.kind for event in clam.events]
            assert kinds[0] == "crash_recovery_started"
            assert "crash_recovery_completed" in kinds
            completed = next(
                event for event in clam.events if event.kind == "crash_recovery_completed"
            )
            assert completed.attributes["pages_scanned"] == clam.recovery_report.pages_scanned
            if clam.recovery_report.torn_pages_discarded:
                assert "torn_page_discarded" in kinds

    def test_config_mismatch_rejected_and_superblock_adopted(self, tmp_path):
        path = tmp_path / "conf.clam"
        with DurableCLAM(path, config=CFG, geometry=GEOM):
            pass
        with pytest.raises(ConfigurationError, match="configuration mismatch"):
            DurableCLAM(path, config=COLD_CFG, geometry=GEOM)
        with DurableCLAM(path, geometry=GEOM) as clam:  # adopt stored config
            assert clam.config == CFG

    def test_unbuffered_config_rejected(self, tmp_path):
        config = CLAMConfig(use_buffering=False)
        with pytest.raises(ConfigurationError, match="use_buffering"):
            DurableCLAM(tmp_path / "nope.clam", config=config, geometry=GEOM)

    def test_close_is_idempotent_and_leaves_only_the_device_file(self, tmp_path):
        path = tmp_path / "tidy.clam"
        clam = DurableCLAM(path, config=CFG, geometry=GEOM)
        clam.insert(b"k", b"v")
        clam.close()
        clam.close()
        assert clam.persistent_device.closed
        assert os.listdir(tmp_path) == ["tidy.clam"]

    def test_double_crash_during_recovery_era_is_survivable(self, tmp_path):
        """Crash, reopen, crash again mid-workload, reopen again."""
        path = tmp_path / "double.clam"
        crashed, error = run_workload(path, crash_at=80)
        assert error is not None
        crashed.close()
        clam = DurableCLAM(path, geometry=GEOM)
        clam.persistent_device.faults.crash_after_n_ios(13)
        try:
            for i in range(500, 700):
                clam.insert(key(i), value(i))
        except (PowerLossError, DeviceFailedError):
            pass
        acked = acknowledged_items(clam)
        clam.close()
        with DurableCLAM(path, geometry=GEOM) as reopened:
            for k, v in acked.items():
                assert reopened.lookup(k).value == v


class TestPersistentCluster:
    CLUSTER_CFG = CLAMConfig(
        num_super_tables=2,
        buffer_capacity_items=16,
        incarnations_per_table=16,
        checkpoint_interval_flushes=4,
    )

    def test_power_cut_shard_reopens_and_rejoins_with_zero_cluster_loss(self, tmp_path):
        data_dir = tmp_path / "cluster"
        with ClusterService(
            num_shards=3,
            config=self.CLUSTER_CFG,
            storage="persistent",
            data_dir=str(data_dir),
            replication_factor=2,
        ) as service:
            for i in range(300):
                service.insert(key(i), value(i))
            victim = service.shard_for(key(0))
            service.fail_shard(victim, mode="power-cut", after_n_ios=7)
            written = 300
            for i in range(300, 800):
                try:
                    service.insert(key(i), value(i))
                    written = i + 1
                except Exception:
                    written = i + 1  # replicas still applied it or hints recorded
                if victim in service.down_shard_ids:
                    break
            assert victim in service.down_shard_ids
            # More writes while the shard is down accumulate handoff hints.
            for i in range(written, written + 50):
                service.insert(key(i), value(i))
            written += 50

            reports = RecoveryCoordinator(service).reopen_and_rejoin()
            assert victim in reports
            assert not reports[victim].clean_shutdown
            assert service.is_live(victim)

            # RF=2: every key the cluster acknowledged is still readable.
            for i in range(written):
                assert service.get(key(i)) == value(i), f"key {i} lost cluster-wide"

            kinds = [event.kind for event in service.events]
            assert "crash_recovery_started" in kinds
            assert "crash_recovery_completed" in kinds
            assert "reopen_rejoin" in kinds
        # Context-manager close released every shard file cleanly.
        assert sorted(os.listdir(data_dir)) == [
            "shard-0.clam",
            "shard-1.clam",
            "shard-2.clam",
        ]

    def test_cluster_restart_from_data_dir_recovers_all_shards(self, tmp_path):
        data_dir = tmp_path / "cluster"
        with ClusterService(
            num_shards=2,
            config=self.CLUSTER_CFG,
            storage="persistent",
            data_dir=str(data_dir),
        ) as service:
            for i in range(120):
                service.insert(key(i), value(i))
        with ClusterService(
            num_shards=2,
            config=self.CLUSTER_CFG,
            storage="persistent",
            data_dir=str(data_dir),
        ) as service:
            for clam in service.shards.values():
                assert clam.recovery_report is not None
                assert clam.recovery_report.clean_shutdown
            for i in range(120):
                assert service.get(key(i)) == value(i)

    def test_data_dir_required_for_persistent_and_rejected_otherwise(self, tmp_path):
        with pytest.raises(ConfigurationError, match="data_dir"):
            ClusterService(num_shards=2, storage="persistent")
        with pytest.raises(ConfigurationError, match="data_dir"):
            ClusterService(num_shards=2, storage="dram", data_dir=str(tmp_path))
