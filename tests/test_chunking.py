"""Tests for Rabin-Karp content-defined chunking and fingerprints."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.wanopt import RabinChunker, chunk_from_bytes, fingerprint_bytes


class TestRabinChunker:
    def test_boundaries_cover_data_exactly(self):
        data = random.Random(1).randbytes(64 * 1024)
        chunker = RabinChunker(average_size=2048)
        boundaries = chunker.boundaries(data)
        assert boundaries[0].start == 0
        assert boundaries[-1].end == len(data)
        for previous, current in zip(boundaries, boundaries[1:]):
            assert previous.end == current.start

    def test_split_reassembles_to_original(self):
        data = random.Random(2).randbytes(32 * 1024)
        chunker = RabinChunker(average_size=1024)
        assert b"".join(chunker.split(data)) == data

    def test_chunk_sizes_respect_bounds(self):
        data = random.Random(3).randbytes(128 * 1024)
        chunker = RabinChunker(average_size=2048)
        boundaries = chunker.boundaries(data)
        # All chunks except possibly the trailing one respect min/max bounds.
        for boundary in boundaries[:-1]:
            assert chunker.min_size <= boundary.length <= chunker.max_size

    def test_average_size_roughly_respected(self):
        data = random.Random(4).randbytes(256 * 1024)
        chunker = RabinChunker(average_size=4096)
        boundaries = chunker.boundaries(data)
        mean = sum(b.length for b in boundaries) / len(boundaries)
        assert 1024 < mean < 16384

    def test_chunking_is_deterministic(self):
        data = random.Random(5).randbytes(16 * 1024)
        chunker = RabinChunker(average_size=1024)
        assert chunker.boundaries(data) == chunker.boundaries(data)

    def test_boundaries_resist_prefix_insertion(self):
        """The defining property of content-defined chunking: inserting bytes at
        the front must not move most downstream chunk boundaries (fixed-size
        chunking would shift every one of them)."""
        data = random.Random(6).randbytes(64 * 1024)
        shifted = b"PREFIX-BYTES!" + data
        chunker = RabinChunker(average_size=1024)
        original_cuts = {b.end for b in chunker.boundaries(data)}
        shifted_cuts = {b.end - len(b"PREFIX-BYTES!") for b in chunker.boundaries(shifted)}
        common = original_cuts & shifted_cuts
        assert len(common) > len(original_cuts) * 0.5

    def test_empty_input(self):
        assert RabinChunker(average_size=1024).boundaries(b"") == []

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RabinChunker(average_size=16)
        with pytest.raises(ValueError):
            RabinChunker(average_size=1024, min_size=2048, max_size=1024)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=8192))
    def test_property_cover_and_reassemble(self, data):
        chunker = RabinChunker(average_size=256)
        assert b"".join(chunker.split(data)) == data


class TestFingerprints:
    def test_fingerprint_deterministic_and_content_sensitive(self):
        assert fingerprint_bytes(b"hello") == fingerprint_bytes(b"hello")
        assert fingerprint_bytes(b"hello") != fingerprint_bytes(b"hellp")

    def test_fingerprint_length(self):
        assert len(fingerprint_bytes(b"data")) == 20
        assert len(fingerprint_bytes(b"data", length=8)) == 8
        with pytest.raises(ValueError):
            fingerprint_bytes(b"data", length=21)

    def test_chunk_from_bytes(self):
        chunk = chunk_from_bytes(b"payload")
        assert chunk.size == 7
        assert chunk.payload == b"payload"
        assert chunk.fingerprint == fingerprint_bytes(b"payload")

    def test_chunk_validation(self):
        from repro.wanopt.fingerprint import Chunk

        with pytest.raises(ValueError):
            Chunk(fingerprint=b"", size=1)
        with pytest.raises(ValueError):
            Chunk(fingerprint=b"f", size=-1)
        with pytest.raises(ValueError):
            Chunk(fingerprint=b"f", size=3, payload=b"toolong")
        with pytest.raises(ValueError):
            Chunk(fingerprint=b"f", size=3, payload=memoryview(b"toolong"))


class TestZeroCopyPath:
    """The real-byte pipeline must not copy payload bytes per chunk."""

    def test_fingerprint_accepts_memoryview_without_copy(self):
        data = b"some chunk payload bytes"
        view = memoryview(data)[5:16]
        assert fingerprint_bytes(view) == fingerprint_bytes(bytes(view))

    def test_split_yields_memoryviews_over_the_input(self):
        data = random.Random(7).randbytes(16 * 1024)
        chunker = RabinChunker(average_size=1024)
        pieces = list(chunker.split(data))
        assert all(isinstance(piece, memoryview) for piece in pieces)
        assert all(piece.obj is data for piece in pieces)
        assert b"".join(pieces) == data

    def test_chunk_from_memoryview_keeps_raw_and_materialises_payload_once(self):
        data = random.Random(8).randbytes(4096)
        view = memoryview(data)[100:900]
        chunk = chunk_from_bytes(view)
        assert chunk.size == 800
        assert chunk.raw is view  # zero-copy until payload is requested
        first = chunk.payload
        assert first == bytes(view)
        assert isinstance(first, bytes)
        assert chunk.payload is first  # cached: materialised at most once
        assert chunk.raw is first

    def test_chunk_equality_and_hash_across_buffer_types(self):
        from repro.wanopt.fingerprint import Chunk

        data = b"identical payload"
        fingerprint = fingerprint_bytes(data)
        from_bytes = Chunk(fingerprint=fingerprint, size=len(data), payload=data)
        from_view = Chunk(fingerprint=fingerprint, size=len(data), payload=memoryview(data))
        assert from_bytes == from_view
        assert hash(from_bytes) == hash(from_view)
        assert from_bytes != Chunk(fingerprint=fingerprint, size=len(data))

    def test_descriptor_chunk_payload_stays_none(self):
        from repro.wanopt.fingerprint import Chunk

        chunk = Chunk(fingerprint=b"f", size=123)
        assert chunk.payload is None
        assert chunk.raw is None

    def test_chunk_public_fields_are_read_only(self):
        """Chunks are hashable value objects; their identity must not drift."""
        chunk = chunk_from_bytes(b"immutable")
        with pytest.raises(AttributeError):
            chunk.fingerprint = b"other"
        with pytest.raises(AttributeError):
            chunk.size = 1
        with pytest.raises(AttributeError):
            chunk.payload = b"x"
