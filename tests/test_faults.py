"""Tests for deterministic device-level fault injection (flashsim.faults)."""

import pytest

from repro.core.clam import CLAM, build_device
from repro.core.config import CLAMConfig
from repro.core.errors import DeviceFailedError
from repro.flashsim import FaultInjector, FaultMode


def make_device(storage="intel-ssd"):
    return build_device(storage)


class TestFaultInjector:
    def test_healthy_is_a_no_op(self):
        injector = FaultInjector()
        assert injector.is_healthy
        assert injector.check(1.5) == 1.5
        assert injector.faulted_ios == 0

    def test_crash_raises_until_heal(self):
        injector = FaultInjector(device_name="ssd-0")
        injector.crash()
        assert injector.is_crashed
        with pytest.raises(DeviceFailedError, match="ssd-0"):
            injector.check(1.0)
        with pytest.raises(DeviceFailedError):
            injector.check(1.0)
        assert injector.faulted_ios == 2
        injector.heal()
        assert injector.is_healthy
        assert injector.check(1.0) == 1.0

    def test_io_errors_are_deterministic_under_seed(self):
        def failure_pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.inject_errors(error_rate=0.3)
            pattern = []
            for _ in range(200):
                try:
                    injector.check(1.0)
                    pattern.append(False)
                except DeviceFailedError:
                    pattern.append(True)
            return pattern

        first = failure_pattern(seed=7)
        second = failure_pattern(seed=7)
        other = failure_pattern(seed=8)
        assert first == second
        assert first != other
        assert 20 < sum(first) < 120  # roughly the configured rate

    def test_degraded_inflates_latency_without_failing(self):
        injector = FaultInjector()
        injector.degrade(latency_multiplier=3.0, extra_latency_ms=0.5)
        assert injector.mode is FaultMode.DEGRADED
        assert injector.check(1.0) == pytest.approx(3.5)
        assert injector.degraded_ios == 1
        injector.heal()
        assert injector.check(1.0) == 1.0

    def test_parameter_validation(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.inject_errors(error_rate=0.0)
        with pytest.raises(ValueError):
            injector.inject_errors(error_rate=1.5)
        with pytest.raises(ValueError):
            injector.degrade(latency_multiplier=0.5)
        with pytest.raises(ValueError):
            injector.degrade(extra_latency_ms=-1.0)


class TestDeviceFaults:
    def test_crashed_device_refuses_io_and_freezes_clock(self):
        device = make_device()
        device.write_page(0, b"payload")
        before_ms = device.clock.now_ms
        before_ops = device.stats.count()
        device.fail()
        assert device.is_failed
        with pytest.raises(DeviceFailedError):
            device.read_page(0)
        with pytest.raises(DeviceFailedError):
            device.write_page(1, b"x")
        with pytest.raises(DeviceFailedError):
            device.read_range(0, 2)
        with pytest.raises(DeviceFailedError):
            device.write_range(0, [b"a", b"b"])
        # A refused I/O advances neither the clock nor the stats.
        assert device.clock.now_ms == before_ms
        assert device.stats.count() == before_ops

    def test_heal_preserves_payloads(self):
        device = make_device()
        device.write_page(3, b"durable")
        device.fail()
        device.heal()
        payload, _latency = device.read_page(3)
        assert payload == b"durable"

    def test_degraded_device_still_serves_but_slower(self):
        healthy = make_device()
        sick = make_device()
        sick.faults.degrade(latency_multiplier=10.0)
        _, fast = healthy.read_page(0)
        _, slow = sick.read_page(0)
        assert slow == pytest.approx(10.0 * fast)
        assert sick.read_page(0)[0] == b""

    @pytest.mark.parametrize("storage", ["intel-ssd", "transcend-ssd", "disk", "dram"])
    def test_every_device_profile_carries_an_injector(self, storage):
        device = make_device(storage)
        device.fail()
        with pytest.raises(DeviceFailedError):
            device.read_page(0)
        device.heal()
        device.read_page(0)


class TestClamFaults:
    def make_clam(self):
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        return CLAM(config, storage="intel-ssd")

    def test_crashed_clam_refuses_even_buffer_served_operations(self):
        clam = self.make_clam()
        clam.insert(b"key", b"value")  # sits in the DRAM buffer
        for device in clam.devices:
            device.fail()
        # Without the CLAM-level gate this lookup would be served from DRAM.
        with pytest.raises(DeviceFailedError):
            clam.lookup(b"key")
        with pytest.raises(DeviceFailedError):
            clam.insert(b"other", b"value")
        with pytest.raises(DeviceFailedError):
            clam.delete(b"key")

    def test_healed_clam_serves_again_with_data_intact(self):
        clam = self.make_clam()
        for identifier in range(200):  # enough to flush some data to flash
            clam.insert(b"key-%d" % identifier, b"v")
        for device in clam.devices:
            device.fail()
        with pytest.raises(DeviceFailedError):
            clam.lookup(b"key-0")
        for device in clam.devices:
            device.heal()
        assert all(clam.lookup(b"key-%d" % i).found for i in range(200))
