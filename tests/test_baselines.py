"""Tests for the baseline indexes (BDB-style hash, B-tree, flash hash, DRAM hash)."""

import pytest

from repro.baselines import (
    ConventionalFlashHash,
    DRAMHashIndex,
    ExternalBTreeIndex,
    ExternalHashIndex,
)
from repro.flashsim import MagneticDisk, SSD, SimulationClock


def _all_baselines():
    return [
        ExternalHashIndex(SSD(clock=SimulationClock())),
        ExternalBTreeIndex(SSD(clock=SimulationClock())),
        ConventionalFlashHash(SSD(clock=SimulationClock())),
        DRAMHashIndex(),
    ]


class TestCommonBehaviour:
    @pytest.mark.parametrize("index", _all_baselines(), ids=lambda i: type(i).__name__)
    def test_insert_lookup_round_trip(self, index):
        index.insert(b"key", b"value")
        result = index.lookup(b"key")
        assert result.found
        assert result.value == b"value"

    @pytest.mark.parametrize("index", _all_baselines(), ids=lambda i: type(i).__name__)
    def test_missing_key(self, index):
        assert not index.lookup(b"missing").found

    @pytest.mark.parametrize("index", _all_baselines(), ids=lambda i: type(i).__name__)
    def test_update_overwrites(self, index):
        index.insert(b"key", b"v1")
        index.update(b"key", b"v2")
        assert index.lookup(b"key").value == b"v2"

    @pytest.mark.parametrize("index", _all_baselines(), ids=lambda i: type(i).__name__)
    def test_delete(self, index):
        index.insert(b"key", b"value")
        index.delete(b"key")
        assert not index.lookup(b"key").found

    @pytest.mark.parametrize("index", _all_baselines(), ids=lambda i: type(i).__name__)
    def test_many_keys_round_trip(self, index):
        keys = {b"key-%d" % i: b"value-%d" % i for i in range(300)}
        for key, value in keys.items():
            index.insert(key, value)
        for key, value in keys.items():
            assert index.lookup(key).value == value

    @pytest.mark.parametrize("index", _all_baselines(), ids=lambda i: type(i).__name__)
    def test_stats_recorded(self, index):
        index.insert(b"key", b"value")
        index.lookup(b"key")
        assert index.stats.inserts == 1
        assert index.stats.lookups == 1


class TestExternalHashIndex:
    def test_every_operation_pays_device_io(self):
        ssd = SSD(clock=SimulationClock())
        index = ExternalHashIndex(ssd, cache_pages=0)
        index.insert(b"key", b"value")
        assert index.stats.flash_writes >= 1
        result = index.lookup(b"key")
        assert result.flash_reads >= 1

    def test_cache_absorbs_repeated_reads(self):
        ssd = SSD(clock=SimulationClock())
        index = ExternalHashIndex(ssd, cache_pages=128)
        index.insert(b"key", b"value")
        first = index.lookup(b"key").latency_ms
        second = index.lookup(b"key").latency_ms
        assert second <= first

    def test_on_disk_slower_than_on_ssd(self):
        disk_index = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=0)
        ssd_index = ExternalHashIndex(SSD(clock=SimulationClock()), cache_pages=0)
        disk_latency = disk_index.lookup(b"probe").latency_ms
        ssd_latency = ssd_index.lookup(b"probe").latency_ms
        assert disk_latency > ssd_latency

    def test_disk_latency_matches_paper_magnitude(self):
        """BDB-on-disk operations should be in the multi-millisecond seek range
        (the paper reports ~6.8-7 ms means)."""
        index = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=0)
        for i in range(200):
            index.insert(b"key-%d" % i, b"v")
        for i in range(200):
            index.lookup(b"key-%d" % i)
        assert 3.0 < index.stats.mean_insert_latency_ms < 15.0
        assert 3.0 < index.stats.mean_lookup_latency_ms < 15.0

    def test_sustained_random_writes_degrade_ssd(self):
        """The §7.2.2 effect: a continuous insert stream pushes the SSD into GC
        and per-op latency rises by an order of magnitude."""
        ssd = SSD(clock=SimulationClock())
        index = ExternalHashIndex(ssd, cache_pages=0)
        for i in range(4000):
            index.insert(b"key-%d" % i, b"v")
        assert index.stats.mean_insert_latency_ms > 1.0

    def test_overflow_chains_keep_data(self):
        ssd = SSD(clock=SimulationClock())
        index = ExternalHashIndex(ssd, num_buckets=16, entries_per_page=4)
        keys = {b"key-%d" % i: b"v%d" % i for i in range(300)}
        for key, value in keys.items():
            index.insert(key, value)
        for key, value in keys.items():
            assert index.lookup(key).value == value

    def test_in_memory_filter_suppresses_miss_reads(self):
        ssd = SSD(clock=SimulationClock())
        index = ExternalHashIndex(ssd, in_memory_filter=True)
        index.insert(b"present", b"v")
        miss = index.lookup(b"absent")
        assert miss.flash_reads == 0

    def test_items_returns_all(self):
        index = ExternalHashIndex(SSD(clock=SimulationClock()))
        index.insert(b"a", b"1")
        index.insert(b"b", b"2")
        assert index.items() == {b"a": b"1", b"b": b"2"}


class TestExternalBTreeIndex:
    def test_leaf_splits_preserve_data(self):
        index = ExternalBTreeIndex(SSD(clock=SimulationClock()), leaf_capacity=8)
        keys = {b"key-%03d" % i: b"v%d" % i for i in range(200)}
        for key, value in keys.items():
            index.insert(key, value)
        for key, value in keys.items():
            assert index.lookup(key).value == value

    def test_items_sorted_by_key(self):
        index = ExternalBTreeIndex(SSD(clock=SimulationClock()), leaf_capacity=8)
        for i in (5, 1, 9, 3):
            index.insert(b"key-%d" % i, b"v")
        assert list(index.items().keys()) == sorted(index.items().keys())

    def test_invalid_leaf_capacity_rejected(self):
        with pytest.raises(ValueError):
            ExternalBTreeIndex(SSD(clock=SimulationClock()), leaf_capacity=2)


class TestConventionalFlashHash:
    def test_bloom_filter_short_circuits_misses(self):
        with_filter = ConventionalFlashHash(SSD(clock=SimulationClock()), use_bloom_filter=True)
        without_filter = ConventionalFlashHash(SSD(clock=SimulationClock()), use_bloom_filter=False)
        with_filter.insert(b"key", b"v")
        without_filter.insert(b"key", b"v")
        assert with_filter.lookup(b"absent").flash_reads == 0
        assert without_filter.lookup(b"absent").flash_reads == 1

    def test_update_costs_read_plus_write(self):
        index = ConventionalFlashHash(SSD(clock=SimulationClock()))
        index.insert(b"key", b"v1")
        result = index.update(b"key", b"v2")
        assert result.flash_reads == 1
        assert result.flash_writes == 1


class TestDRAMHashIndex:
    def test_operations_are_fast(self):
        index = DRAMHashIndex()
        index.insert(b"key", b"value")
        result = index.lookup(b"key")
        assert result.latency_ms < 0.05

    def test_much_faster_than_flash_baseline(self):
        dram = DRAMHashIndex()
        flash = ConventionalFlashHash(SSD(clock=SimulationClock()))
        dram_latency = dram.insert(b"key", b"v").latency_ms
        flash_latency = flash.insert(b"key", b"v").latency_ms
        assert dram_latency * 10 < flash_latency
