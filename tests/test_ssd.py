"""Tests for the SSD model, including its garbage-collection dynamics.

The GC behaviour is what drives the paper's key comparison (§7.2.2): small
random writes degrade the whole device, while BufferHash's occasional large
sequential flushes leave it healthy.
"""

import pytest

from repro.flashsim import (
    SSD,
    SimulationClock,
    INTEL_SSD_PROFILE,
    TRANSCEND_SSD_PROFILE,
)


class TestSSDProfiles:
    def test_intel_faster_than_transcend_for_random_reads(self):
        intel = SSD(profile=INTEL_SSD_PROFILE, clock=SimulationClock())
        transcend = SSD(profile=TRANSCEND_SSD_PROFILE, clock=SimulationClock())
        _d, intel_latency = intel.read_page(100)
        _d, transcend_latency = transcend.read_page(100)
        assert intel_latency < transcend_latency

    def test_intel_faster_than_transcend_for_random_writes(self):
        intel = SSD(profile=INTEL_SSD_PROFILE, clock=SimulationClock())
        transcend = SSD(profile=TRANSCEND_SSD_PROFILE, clock=SimulationClock())
        assert intel.write_page(0, b"x") < transcend.write_page(0, b"x")

    def test_sequential_writes_cheaper_than_random(self, intel_ssd):
        random_latency = intel_ssd.write_page(1000, b"x" * 512, sequential=False)
        sequential_latency = intel_ssd.write_page(1001, b"x" * 512, sequential=True)
        assert sequential_latency < random_latency


class TestSSDGarbageCollection:
    def test_starts_with_full_clean_pool(self, intel_ssd):
        assert intel_ssd.clean_pool_fraction == pytest.approx(1.0)
        assert not intel_ssd.in_gc_mode

    def test_sustained_random_writes_enter_gc_mode(self, intel_ssd):
        writes_needed = (
            INTEL_SSD_PROFILE.clean_pool_bytes
            // int(512 * INTEL_SSD_PROFILE.random_write_amplification)
        ) + 50
        for i in range(writes_needed):
            intel_ssd.write_page((i * 37) % intel_ssd.geometry.total_pages, b"x", sequential=False)
        assert intel_ssd.in_gc_mode
        assert intel_ssd.gc_stall_count > 0

    def test_gc_mode_inflates_read_latency(self, intel_ssd):
        _d, healthy_latency = intel_ssd.read_page(0)
        writes_needed = (
            INTEL_SSD_PROFILE.clean_pool_bytes
            // int(512 * INTEL_SSD_PROFILE.random_write_amplification)
        ) + 50
        for i in range(writes_needed):
            intel_ssd.write_page((i * 37) % intel_ssd.geometry.total_pages, b"x", sequential=False)
        _d, degraded_latency = intel_ssd.read_page(5000)
        assert degraded_latency > healthy_latency + INTEL_SSD_PROFILE.gc_penalty_ms / 2

    def test_sequential_writes_do_not_trigger_gc(self, intel_ssd):
        pages = [b"x" * 512 for _ in range(64)]
        for batch in range(40):
            intel_ssd.write_range(batch * 64, pages)
        assert not intel_ssd.in_gc_mode

    def test_idle_time_replenishes_pool(self, clock, intel_ssd):
        writes_needed = (
            INTEL_SSD_PROFILE.clean_pool_bytes
            // int(512 * INTEL_SSD_PROFILE.random_write_amplification)
        ) + 50
        for i in range(writes_needed):
            intel_ssd.write_page((i * 37) % intel_ssd.geometry.total_pages, b"x", sequential=False)
        assert intel_ssd.in_gc_mode
        # A long idle period lets background GC rebuild the clean pool.
        clock.advance(60_000.0)
        assert not intel_ssd.in_gc_mode
        assert intel_ssd.clean_pool_fraction == pytest.approx(1.0)

    def test_light_write_load_stays_healthy(self, clock, intel_ssd):
        """Writes spaced out in time (low rate) never exhaust the clean pool."""
        for i in range(500):
            intel_ssd.write_page((i * 37) % intel_ssd.geometry.total_pages, b"x", sequential=False)
            clock.advance(10.0)  # 10 ms of idle time between writes
        assert not intel_ssd.in_gc_mode
