"""Tests for the magnetic disk and DRAM device models."""


from repro.flashsim import (
    DRAMDevice,
    MagneticDisk,
    SimulationClock,
    MAGNETIC_DISK_PROFILE,
)


class TestMagneticDisk:
    def test_random_read_pays_seek(self, disk):
        _d, latency = disk.read_page(1234)
        # Seek + rotational delay dominates: must be on the order of milliseconds.
        assert latency > 1.0

    def test_sequential_stream_much_cheaper_than_random(self, disk):
        sequential = disk.write_range(0, [b"x" * 512 for _ in range(64)])
        random_total = 0.0
        for i in range(64):
            random_total += disk.write_page((i * 97) % disk.geometry.total_pages, b"x" * 512)
        assert sequential < random_total / 4

    def test_latency_is_reproducible_with_same_seed(self):
        disk_a = MagneticDisk(clock=SimulationClock(), seed=123)
        disk_b = MagneticDisk(clock=SimulationClock(), seed=123)
        latencies_a = [disk_a.read_page(i * 31)[1] for i in range(20)]
        latencies_b = [disk_b.read_page(i * 31)[1] for i in range(20)]
        assert latencies_a == latencies_b

    def test_average_random_latency_in_calibrated_range(self, disk):
        """Mean random-access latency should be in the single-digit milliseconds
        (the paper reports ~7 ms per BDB-on-disk operation)."""
        latencies = [disk.read_page((i * 131) % disk.geometry.total_pages)[1] for i in range(200)]
        mean = sum(latencies) / len(latencies)
        assert 3.0 < mean < 12.0

    def test_round_trip(self, disk):
        disk.write_page(7, b"disk-data")
        assert disk.read_page(7)[0] == b"disk-data"


class TestDRAMDevice:
    def test_access_is_fast(self):
        dram = DRAMDevice(clock=SimulationClock())
        _d, latency = dram.read_page(10)
        assert latency < 0.01

    def test_round_trip(self):
        dram = DRAMDevice(clock=SimulationClock())
        dram.write_page(3, b"fast")
        assert dram.read_page(3)[0] == b"fast"

    def test_dram_much_faster_than_disk(self):
        dram = DRAMDevice(clock=SimulationClock())
        disk = MagneticDisk(profile=MAGNETIC_DISK_PROFILE, clock=SimulationClock())
        dram_latency = dram.write_page(0, b"x")
        disk_latency = disk.write_page(0, b"x")
        assert dram_latency * 100 < disk_latency
