"""End-to-end behaviour of eviction policies through the public CLAM API."""


from repro.core import CLAM, CLAMConfig, LRUEviction, PriorityBasedEviction


def _small_config(policy_name="fifo"):
    return CLAMConfig.scaled(
        num_super_tables=4,
        buffer_capacity_items=32,
        incarnations_per_table=4,
        eviction_policy_name=policy_name,
    )


class TestFIFOThroughCLAM:
    def test_oldest_keys_disappear_first(self):
        clam = CLAM(_small_config("fifo"), storage="intel-ssd")
        keys = [b"fifo-%d" % i for i in range(4_000)]
        for key in keys:
            clam.insert(key, b"v")
        assert not clam.lookup(keys[0]).found
        assert clam.lookup(keys[-1]).found

    def test_retention_ordering(self):
        """If key A was inserted before key B and A is still present, then B
        (in the same super table) must also be present — FIFO never creates
        holes in the middle of the retention window."""
        clam = CLAM(_small_config("fifo"), storage="intel-ssd")
        keys = [b"order-%d" % i for i in range(3_000)]
        for key in keys:
            clam.insert(key, b"v")
        bufferhash = clam.bufferhash
        # Group keys by super table and check the found/evicted split is a prefix.
        by_table = {}
        for index, key in enumerate(keys):
            by_table.setdefault(bufferhash.table_for(key).table_id, []).append(key)
        for table_keys in by_table.values():
            found_flags = [clam.lookup(key).found for key in table_keys]
            first_found = found_flags.index(True) if True in found_flags else len(found_flags)
            assert all(found_flags[first_found:]), "FIFO retention must be a suffix"


class TestLRUThroughCLAM:
    def test_recently_used_keys_survive_longer_than_unused_ones(self):
        clam = CLAM(
            _small_config("fifo"),  # name overridden by explicit policy below
            storage="intel-ssd",
            eviction_policy=LRUEviction(),
        )
        hot = [b"hot-%d" % i for i in range(20)]
        cold = [b"cold-%d" % i for i in range(20)]
        for key in hot + cold:
            clam.insert(key, b"v")
        # Keep touching the hot keys while churning through new insertions.
        for round_number in range(30):
            for key in hot:
                clam.lookup(key)
            for i in range(60):
                clam.insert(b"churn-%d-%d" % (round_number, i), b"x")
        hot_survivors = sum(1 for key in hot if clam.lookup(key).found)
        cold_survivors = sum(1 for key in cold if clam.lookup(key).found)
        assert hot_survivors > cold_survivors
        assert hot_survivors >= len(hot) * 0.8


class TestPriorityThroughCLAM:
    def test_high_priority_keys_retained(self):
        # Priority encoded in the value's first byte: b"H" = high, b"L" = low.
        policy = PriorityBasedEviction(
            priority_fn=lambda key, value: 1.0 if value[:1] == b"H" else 0.0,
            threshold=0.5,
        )
        clam = CLAM(_small_config("fifo"), storage="intel-ssd", eviction_policy=policy)
        high = [b"high-%d" % i for i in range(30)]
        low = [b"low-%d" % i for i in range(30)]
        for key in high:
            clam.insert(key, b"H-value")
        for key in low:
            clam.insert(key, b"L-value")
        for i in range(3_000):
            clam.insert(b"churn-%d" % i, b"L-churn")
        high_survivors = sum(1 for key in high if clam.lookup(key).found)
        low_survivors = sum(1 for key in low if clam.lookup(key).found)
        assert high_survivors > low_survivors

    def test_update_policy_via_config_name(self):
        clam = CLAM(_small_config("update"), storage="intel-ssd")
        stable = [b"stable-%d" % i for i in range(20)]
        for key in stable:
            clam.insert(key, b"v")
        # Churn with updates to *other* keys; stable keys are never updated,
        # so update-based eviction keeps re-inserting them.
        for round_number in range(25):
            for i in range(50):
                clam.insert(b"volatile-%d" % i, b"round-%d" % round_number)
        survivors = sum(1 for key in stable if clam.lookup(key).found)
        assert survivors >= len(stable) * 0.7
