"""Tests for eviction policies (FIFO, LRU, update-based, priority-based)."""

import pytest

from repro.core import (
    EvictionContext,
    FIFOEviction,
    LRUEviction,
    PriorityBasedEviction,
    UpdateBasedEviction,
    make_policy,
)


def _context(deleted=(), superseded=()):
    deleted_set = set(deleted)
    superseded_set = set(superseded)
    return EvictionContext(
        incarnation_id=0,
        is_deleted=lambda key: key in deleted_set,
        superseded=lambda key: key in superseded_set,
    )


ITEMS = {b"a": b"1", b"b": b"2", b"c": b"3", b"d": b"4"}


class TestFIFOEviction:
    def test_retains_nothing(self):
        assert FIFOEviction().select_retained(dict(ITEMS), _context()) == {}

    def test_is_full_discard(self):
        policy = FIFOEviction()
        assert policy.requires_scan is False
        assert policy.reinsert_on_use is False


class TestLRUEviction:
    def test_retains_nothing_but_reinserts_on_use(self):
        policy = LRUEviction()
        assert policy.select_retained(dict(ITEMS), _context()) == {}
        assert policy.requires_scan is False
        assert policy.reinsert_on_use is True


class TestUpdateBasedEviction:
    def test_retains_live_items_only(self):
        policy = UpdateBasedEviction()
        retained = policy.select_retained(
            dict(ITEMS), _context(deleted=[b"a"], superseded=[b"b"])
        )
        assert retained == {b"c": b"3", b"d": b"4"}

    def test_requires_scan(self):
        assert UpdateBasedEviction().requires_scan is True

    def test_retains_everything_when_nothing_is_stale(self):
        policy = UpdateBasedEviction()
        assert policy.select_retained(dict(ITEMS), _context()) == ITEMS


class TestPriorityBasedEviction:
    def test_threshold_filtering(self):
        policy = PriorityBasedEviction(
            priority_fn=lambda key, value: int(value), threshold=3
        )
        retained = policy.select_retained(dict(ITEMS), _context())
        assert retained == {b"c": b"3", b"d": b"4"}

    def test_deleted_items_never_retained(self):
        policy = PriorityBasedEviction(priority_fn=lambda key, value: 10, threshold=0)
        retained = policy.select_retained(dict(ITEMS), _context(deleted=[b"a"]))
        assert b"a" not in retained

    def test_retain_top_k_caps_retention(self):
        policy = PriorityBasedEviction(
            priority_fn=lambda key, value: int(value), threshold=0, retain_top_k=2
        )
        retained = policy.select_retained(dict(ITEMS), _context())
        assert len(retained) == 2
        assert set(retained) == {b"c", b"d"}  # the two highest priorities

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError):
            PriorityBasedEviction(priority_fn=lambda k, v: 0, threshold=0, retain_top_k=-1)


class TestMakePolicy:
    def test_known_names(self):
        assert isinstance(make_policy("fifo"), FIFOEviction)
        assert isinstance(make_policy("lru"), LRUEviction)
        assert isinstance(make_policy("update"), UpdateBasedEviction)
        assert isinstance(
            make_policy("priority", priority_fn=lambda k, v: 0, threshold=1),
            PriorityBasedEviction,
        )

    def test_priority_requires_arguments(self):
        with pytest.raises(ValueError):
            make_policy("priority")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("random-replacement")

    def test_names_are_exposed(self):
        assert make_policy("fifo").name == "fifo"
        assert make_policy("update").name == "updatebased"
