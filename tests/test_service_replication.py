"""Tests for replicated cluster operation: fanout, failover, read-repair,
typed unavailability errors and shard health tracking."""

import pytest

from repro.core.errors import ConfigurationError, ShardUnavailableError
from repro.service import ClusterService, ShardRouter
from repro.workloads import fingerprint_for
from repro.workloads.workload import Operation, OpKind


def make_cluster(num_shards=4, replication_factor=2, **kwargs):
    return ClusterService(
        num_shards=num_shards, replication_factor=replication_factor, **kwargs
    )


def sample_keys(count, namespace=b"replication-test"):
    return [fingerprint_for(i, namespace=namespace) for i in range(count)]


def key_owned_by(cluster, shard_id, namespace=b"owned"):
    """A key whose primary replica is ``shard_id``."""
    for i in range(10_000):
        key = fingerprint_for(i, namespace=namespace)
        if cluster.shard_for(key) == shard_id:
            return key
    raise AssertionError(f"no key found with primary {shard_id}")


class TestConstruction:
    def test_replication_factor_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterService(num_shards=2, replication_factor=0)
        with pytest.raises(ConfigurationError):
            ClusterService(num_shards=2, replication_factor=3)
        with pytest.raises(ConfigurationError):
            ClusterService(num_shards=2, failure_threshold=0)

    def test_key_tracking_defaults(self):
        assert ClusterService(num_shards=2).tracked_keys is None
        assert ClusterService(num_shards=2, replication_factor=2).tracked_keys == frozenset()
        assert ClusterService(num_shards=2, track_keys=True).tracked_keys == frozenset()


class TestReplicatedWrites:
    def test_insert_lands_on_every_replica(self):
        cluster = make_cluster()
        keys = sample_keys(200)
        for key in keys:
            cluster.insert(key, b"v")
        for key in keys:
            replicas = cluster.replicas_for(key)
            assert len(replicas) == 2
            for shard_id in replicas:
                assert cluster.shards[shard_id].lookup(key).found, (key, shard_id)

    def test_delete_removes_every_replica(self):
        cluster = make_cluster()
        key = sample_keys(1)[0]
        cluster.insert(key, b"v")
        cluster.delete(key)
        for shard_id in cluster.replicas_for(key):
            assert not cluster.shards[shard_id].lookup(key).found
        assert not cluster.lookup(key).found

    def test_tracked_keys_follow_inserts_and_deletes(self):
        cluster = make_cluster()
        keys = sample_keys(10)
        for key in keys:
            cluster.insert(key, b"v")
        assert len(cluster.tracked_keys) == 10
        cluster.delete(keys[0])
        assert len(cluster.tracked_keys) == 9

    def test_batch_writes_also_replicate_and_track(self):
        cluster = make_cluster()
        keys = sample_keys(100, namespace=b"batched")
        batch = cluster.execute_batch(
            [Operation(OpKind.INSERT, key, b"v") for key in keys]
        )
        assert all(result is not None for result in batch.results)
        assert len(cluster.tracked_keys) == 100
        for key in keys:
            for shard_id in cluster.replicas_for(key):
                assert cluster.shards[shard_id].lookup(key).found

    def test_rf1_matches_single_copy_semantics(self):
        cluster = ClusterService(num_shards=4, replication_factor=1)
        keys = sample_keys(100, namespace=b"rf1")
        for key in keys:
            cluster.insert(key, b"v")
        for key in keys:
            (only,) = cluster.replicas_for(key)
            assert only == cluster.shard_for(key)
            holders = [
                shard_id
                for shard_id, clam in cluster.shards.items()
                if clam.lookup(key).found
            ]
            assert holders == [only]


class TestFailover:
    def test_lookup_fails_over_and_marks_shard_down(self):
        cluster = make_cluster()
        keys = sample_keys(300)
        for key in keys:
            cluster.insert(key, b"v")
        victim = cluster.shard_for(keys[0])
        cluster.fail_shard(victim)
        assert cluster.down_shard_ids == ()  # not detected yet
        assert all(cluster.lookup(key).found for key in keys)
        assert cluster.down_shard_ids == (victim,)
        assert cluster.shard_errors[victim] >= 1
        assert victim not in cluster.live_shard_ids

    def test_writes_during_outage_go_to_survivors(self):
        cluster = make_cluster()
        victim = "shard-2"
        cluster.fail_shard(victim)
        key = key_owned_by(cluster, victim)
        cluster.insert(key, b"written-during-outage")  # detects + fails over
        assert cluster.lookup(key).value == b"written-during-outage"
        assert victim in cluster.down_shard_ids

    def test_batch_lookup_fails_over_mid_batch(self):
        cluster = make_cluster()
        keys = sample_keys(200)
        cluster.execute_batch([Operation(OpKind.INSERT, key, b"v") for key in keys])
        victim = cluster.shard_for(keys[0])
        cluster.fail_shard(victim)
        batch = cluster.execute_batch([Operation(OpKind.LOOKUP, key) for key in keys])
        assert all(result is not None and result.found for result in batch.results)
        assert victim in batch.failed_shards
        assert batch.retried_operations > 0
        assert victim in cluster.down_shard_ids

    def test_failure_threshold_delays_down_marking(self):
        cluster = make_cluster(failure_threshold=3)
        victim = "shard-0"
        cluster.fail_shard(victim)
        key = key_owned_by(cluster, victim)
        cluster.insert(key, b"v")
        assert cluster.shard_errors[victim] == 1
        assert victim not in cluster.down_shard_ids
        cluster.insert(key, b"v")
        cluster.insert(key, b"v")
        assert cluster.shard_errors[victim] == 3
        assert victim in cluster.down_shard_ids

    def test_all_replicas_down_raises_typed_error(self):
        cluster = make_cluster(num_shards=3, replication_factor=2)
        key = sample_keys(1)[0]
        cluster.insert(key, b"v")
        for shard_id in cluster.replicas_for(key):
            cluster.fail_shard(shard_id)
        with pytest.raises(ShardUnavailableError):
            cluster.lookup(key)  # first call burns the error budget
            cluster.lookup(key)  # second call has no live replica left

    def test_heal_shard_restores_service(self):
        cluster = make_cluster()
        victim = "shard-1"
        cluster.fail_shard(victim)
        key = key_owned_by(cluster, victim)
        cluster.insert(key, b"v")
        assert victim in cluster.down_shard_ids
        cluster.heal_shard(victim)
        assert victim not in cluster.down_shard_ids
        assert cluster.shard_errors.get(victim, 0) == 0
        assert victim in cluster.live_shard_ids


class TestReadRepair:
    def test_lookup_repairs_a_diverged_replica(self):
        # Hinted handoff covers writes the cluster *saw* a replica miss;
        # read-repair is the second line of defence for divergence it did
        # not see.  Model that by dropping one replica's copy directly.
        cluster = make_cluster()
        key = sample_keys(1, namespace=b"repair")[0]
        primary = cluster.replicas_for(key)[0]
        cluster.insert(key, b"fresh-value")
        cluster.shards[primary].delete(key)  # silent divergence
        assert not cluster.shards[primary].lookup(key).found
        result = cluster.lookup(key)
        assert result.found and result.value == b"fresh-value"
        assert cluster.read_repairs == 1
        assert cluster.shards[primary].lookup(key).found

    def test_no_repair_on_clean_miss(self):
        cluster = make_cluster()
        assert not cluster.lookup(b"never-written").found
        assert cluster.read_repairs == 0


class TestTypedUnavailability:
    """Regression: a shard removed mid-flight used to surface as a bare
    ``KeyError`` from the shard mapping; every dispatch now goes through the
    router's live view and raises ShardUnavailableError instead."""

    def test_sequential_dispatch_to_vanished_shard_is_typed(self):
        cluster = ClusterService(num_shards=3)
        key = sample_keys(1)[0]
        owner = cluster.shard_for(key)
        del cluster.shards[owner]  # desync the mapping from the ring
        with pytest.raises(ShardUnavailableError):
            cluster.insert(key, b"v")
        with pytest.raises(ShardUnavailableError):
            cluster.lookup(key)

    def test_batch_dispatch_to_vanished_shard_is_typed(self):
        cluster = ClusterService(num_shards=3)
        keys = sample_keys(50)
        owner = cluster.shard_for(keys[0])
        targeted = [key for key in keys if cluster.shard_for(key) == owner]
        del cluster.shards[owner]
        with pytest.raises(ShardUnavailableError):
            cluster.execute_batch(
                [Operation(OpKind.INSERT, key, b"v") for key in targeted]
            )

    def test_batch_reroutes_when_a_replica_survives(self):
        cluster = make_cluster(num_shards=4, replication_factor=2)
        keys = sample_keys(100)
        cluster.execute_batch([Operation(OpKind.INSERT, key, b"v") for key in keys])
        victim = cluster.shard_for(keys[0])
        del cluster.shards[victim]  # vanished mid-flight, but RF=2 covers it
        batch = cluster.execute_batch([Operation(OpKind.LOOKUP, key) for key in keys])
        assert all(result is not None and result.found for result in batch.results)

    def test_standalone_executor_keeps_configuration_error(self):
        # Without a cluster's live view the old contract stands: a router /
        # instance desync is a configuration bug.
        from repro.service import BatchExecutor

        router = ShardRouter(["a", "b"])
        donor = ClusterService(num_shards=1)
        executor = BatchExecutor(router, {"a": donor.shards["shard-0"]})
        with pytest.raises(ConfigurationError):
            executor.execute(
                [Operation(OpKind.INSERT, key, b"v") for key in sample_keys(50)]
            )


class TestHealthReporting:
    def test_health_snapshot(self):
        cluster = make_cluster()
        for key in sample_keys(50):
            cluster.insert(key, b"v")
        health = cluster.stats.health()
        assert health["replication_factor"] == 2
        assert health["down_shards"] == []
        assert len(health["live_shards"]) == 4
        victim = "shard-3"
        cluster.fail_shard(victim)
        cluster.insert(key_owned_by(cluster, victim), b"v")
        health = cluster.stats.health()
        assert health["down_shards"] == [victim]
        assert health["shard_errors"][victim] >= 1

    def test_describe_includes_fleet_liveness(self):
        cluster = make_cluster()
        summary = cluster.describe()
        assert summary["live_shards"] == 4.0
        assert summary["down_shards"] == 0.0
        assert summary["replication_factor"] == 2.0


class TestHintedHandoff:
    """Writes and deletes a down replica missed are replayed when it heals,
    so replicas later in the preference list come back neither missing keys
    nor serving stale values (regression: read-repair alone only fixed
    replicas a lookup probed *before* its first hit)."""

    def replica_pair(self, cluster, namespace=b"hints"):
        key = fingerprint_for(0, namespace=namespace)
        primary, secondary = cluster.replicas_for(key)
        return key, primary, secondary

    def test_heal_backfills_a_later_replica(self):
        cluster = make_cluster()
        key, _primary, secondary = self.replica_pair(cluster)
        cluster.fail_shard(secondary)
        cluster.record_shard_error(secondary)
        cluster.insert(key, b"v1")  # lands on the primary only
        cluster.heal_shard(secondary)
        # Lookups would be served by the primary and never probe the healed
        # replica — the hint replay must have backfilled it directly.
        assert cluster.shards[secondary].lookup(key).value == b"v1"
        assert cluster.hinted_handoffs == 1

    def test_sequential_nonoverlapping_failures_lose_nothing(self):
        from repro.service import RecoveryCoordinator

        cluster = make_cluster()
        key, primary, secondary = self.replica_pair(cluster)
        cluster.fail_shard(secondary)
        cluster.record_shard_error(secondary)
        cluster.insert(key, b"v1")
        cluster.heal_shard(secondary)
        cluster.fail_shard(primary)
        cluster.record_shard_error(primary)
        report = RecoveryCoordinator(cluster).recover()
        assert report.keys_lost == 0
        assert cluster.lookup(key).value == b"v1"

    def test_heal_overwrites_a_stale_value(self):
        cluster = make_cluster()
        key, primary, _secondary = self.replica_pair(cluster, namespace=b"stale")
        cluster.insert(key, b"v1")
        cluster.fail_shard(primary)
        cluster.record_shard_error(primary)
        cluster.update(key, b"v2")  # survivor only
        cluster.heal_shard(primary)
        assert cluster.shards[primary].lookup(key).value == b"v2"
        assert cluster.lookup(key).value == b"v2"

    def test_heal_applies_a_missed_delete(self):
        cluster = make_cluster()
        key, primary, _secondary = self.replica_pair(cluster, namespace=b"deleted")
        cluster.insert(key, b"doomed")
        cluster.fail_shard(primary)
        cluster.record_shard_error(primary)
        cluster.delete(key)
        cluster.heal_shard(primary)
        assert not cluster.shards[primary].lookup(key).found
        assert not cluster.lookup(key).found  # no resurrection

    def test_batch_writes_record_hints_too(self):
        cluster = make_cluster()
        key, _primary, secondary = self.replica_pair(cluster, namespace=b"batched-hint")
        cluster.fail_shard(secondary)
        cluster.record_shard_error(secondary)
        cluster.execute_batch([Operation(OpKind.INSERT, key, b"v1")])
        cluster.heal_shard(secondary)
        assert cluster.shards[secondary].lookup(key).value == b"v1"

    def test_applied_writes_are_tracked_even_when_the_batch_fails(self):
        from repro.core.hashing import key_data

        cluster = make_cluster()
        bad_key = fingerprint_for(0, namespace=b"doomed-lookup")
        doomed = set(cluster.replicas_for(bad_key))
        for shard_id in doomed:
            cluster.fail_shard(shard_id)  # crashed, not yet detected
        good_key = next(
            fingerprint_for(i, namespace=b"survivor")
            for i in range(5000)
            if not set(cluster.replicas_for(fingerprint_for(i, namespace=b"survivor")))
            & doomed
        )
        with pytest.raises(ShardUnavailableError):
            cluster.execute_batch(
                [
                    Operation(OpKind.INSERT, good_key, b"v"),
                    Operation(OpKind.LOOKUP, bad_key),
                ]
            )
        # The applied insert reached both shards and the key catalog, so a
        # later recovery still knows about it.
        assert key_data(good_key) in cluster.tracked_keys
        for shard_id in cluster.replicas_for(good_key):
            assert cluster.shards[shard_id].lookup(good_key).found
