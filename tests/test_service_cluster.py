"""Tests for the ClusterService facade and cross-shard stats aggregation."""

import pytest

from repro.core import CLAM, CLAMConfig
from repro.core.errors import ConfigurationError
from repro.service import ClusterService
from repro.workloads import (
    OpKind,
    WorkloadRunner,
    WorkloadSpec,
    build_mixed_workload,
    fingerprint_for,
)


@pytest.fixture
def cluster_config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
    )


@pytest.fixture
def cluster(cluster_config: CLAMConfig) -> ClusterService:
    return ClusterService(num_shards=4, config=cluster_config)


class TestHashIndexInterface:
    def test_basic_operations(self, cluster: ClusterService):
        result = cluster.insert(b"key-1", b"value-1")
        assert result.latency_ms > 0
        lookup = cluster.lookup(b"key-1")
        assert lookup.found and lookup.value == b"value-1"
        cluster.update(b"key-1", b"value-2")
        assert cluster.get(b"key-1") == b"value-2"
        assert b"key-1" in cluster
        cluster.delete(b"key-1")
        assert b"key-1" not in cluster

    def test_runner_drives_cluster_end_to_end(self, cluster: ClusterService):
        """The acceptance-criteria path: existing runner, 4-shard cluster."""
        operations = build_mixed_workload(WorkloadSpec(num_keys=800, seed=21))
        report = WorkloadRunner(cluster).run(operations)
        assert report.operations == len(operations)
        assert report.lookups == sum(
            1 for op in operations if op.kind is OpKind.LOOKUP
        )
        assert report.simulated_duration_ms > 0
        assert report.mean_lookup_latency_ms > 0
        # Every shard took part.
        assert set(cluster.stats.operations_per_shard()) == set(cluster.shard_ids)
        assert all(
            ops > 0 for ops in cluster.stats.operations_per_shard().values()
        )

    def test_cluster_matches_single_clam_results(self):
        """Sharding must not change answers, only placement/timing.

        Sized so nothing evicts: with identical op streams, a 4-shard cluster
        and one big CLAM return identical lookup outcomes for every key.
        """
        operations = build_mixed_workload(WorkloadSpec(num_keys=500, seed=13))
        single = CLAM(CLAMConfig.scaled())
        clustered = ClusterService(num_shards=4, config=CLAMConfig.scaled())
        single_report = WorkloadRunner(single).run(operations)
        cluster_report = WorkloadRunner(clustered).run(operations)
        assert cluster_report.lookup_hits == single_report.lookup_hits
        for operation in operations:
            if operation.kind is OpKind.LOOKUP:
                assert clustered.get(operation.key) == single.get(operation.key)

    def test_run_batched_matches_sequential_report(self, cluster_config: CLAMConfig):
        operations = build_mixed_workload(WorkloadSpec(num_keys=700, seed=2))
        sequential = WorkloadRunner(ClusterService(num_shards=4, config=cluster_config)).run(
            operations
        )
        batched = WorkloadRunner(ClusterService(num_shards=4, config=cluster_config)).run_batched(
            operations, batch_size=50
        )
        assert batched.operations == sequential.operations
        assert batched.lookups == sequential.lookups
        assert batched.lookup_hits == sequential.lookup_hits
        assert batched.inserts == sequential.inserts
        assert batched.lookup_latencies_ms == pytest.approx(
            sequential.lookup_latencies_ms
        )
        # Batching amortises per-op dispatch, so the cluster finishes sooner.
        assert batched.simulated_duration_ms < sequential.simulated_duration_ms

    def test_run_batched_requires_batch_support(self, small_clam):
        with pytest.raises(TypeError):
            WorkloadRunner(small_clam).run_batched([], batch_size=8)

    def test_runner_clock_is_cluster_ensemble(self, cluster: ClusterService):
        runner = WorkloadRunner(cluster)
        assert runner.clock is cluster.clock
        assert cluster.clock.now_ms == 0.0
        cluster.insert(b"k", b"v")
        assert cluster.clock.now_ms > 0.0


class TestClusterStats:
    def test_combined_counters_sum_over_shards(self, cluster: ClusterService):
        operations = build_mixed_workload(WorkloadSpec(num_keys=600, seed=8))
        WorkloadRunner(cluster).run(operations)
        per_shard = cluster.stats.per_shard()
        combined = cluster.stats.combined()
        for key in ("lookups", "inserts", "flash_reads", "flash_writes", "flushes"):
            assert combined[key] == pytest.approx(
                sum(counters[key] for counters in per_shard.values())
            ), key
        assert combined["clock_ms"] == pytest.approx(
            max(counters["clock_ms"] for counters in per_shard.values())
        )
        assert combined["clock_ms"] == pytest.approx(cluster.clock.now_ms)

    def test_per_shard_snapshot_is_cheap_flat_dict(self, cluster: ClusterService):
        cluster.insert(b"key", b"value")
        for counters in cluster.stats.per_shard().values():
            assert all(isinstance(v, float) for v in counters.values())
            assert "device_write_ops" in counters
            assert "clock_ms" in counters

    def test_hottest_shard_and_imbalance(self, cluster: ClusterService):
        assert cluster.stats.imbalance_factor() == 1.0
        for identifier in range(200):
            cluster.insert(fingerprint_for(identifier), b"v")
        shard_id, load = cluster.stats.hottest_shard()
        loads = cluster.stats.operations_per_shard()
        assert load == max(loads.values())
        assert loads[shard_id] == load
        assert cluster.stats.imbalance_factor() >= 1.0

    def test_describe_summary(self, cluster: ClusterService):
        for identifier in range(100):
            cluster.insert(fingerprint_for(identifier), b"v")
            cluster.lookup(fingerprint_for(identifier))
        summary = cluster.describe()
        assert summary["shards"] == 4.0
        assert summary["lookups"] == 100.0
        assert summary["inserts"] == 100.0
        assert summary["lookup_success_rate"] == 1.0
        assert summary["throughput_ops_per_s"] > 0


class TestMembership:
    def test_add_shard_provisions_instance_and_reports_handoff(self, cluster):
        handoff = cluster.add_shard()
        assert cluster.num_shards == 5
        assert "shard-4" in cluster.shards
        assert handoff.added == ("shard-4",)
        assert 0 < handoff.moved_fraction < 1
        # New shard serves immediately.
        keys = [fingerprint_for(i, namespace=b"after-add") for i in range(400)]
        owners = {cluster.shard_for(key) for key in keys}
        assert "shard-4" in owners
        for key in keys:
            cluster.insert(key, b"v")
            assert cluster.get(key) == b"v"

    def test_remove_shard_decommissions_instance(self, cluster):
        handoff = cluster.remove_shard("shard-3")
        assert cluster.num_shards == 3
        assert "shard-3" not in cluster.shards
        assert handoff.removed == ("shard-3",)
        keys = [fingerprint_for(i, namespace=b"after-remove") for i in range(200)]
        assert all(cluster.shard_for(key) != "shard-3" for key in keys)
        assert len(cluster.clock) == 3

    def test_membership_errors(self, cluster):
        with pytest.raises(ConfigurationError):
            ClusterService(num_shards=0)
        for shard_id in ("shard-1", "shard-2", "shard-3"):
            cluster.remove_shard(shard_id)
        with pytest.raises(ConfigurationError):
            cluster.remove_shard("shard-0")
        with pytest.raises(ConfigurationError):
            cluster.remove_shard("never-existed")
