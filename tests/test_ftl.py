"""Tests for the page-mapping FTL (logical mapping, garbage collection, TRIM)."""

import pytest

from repro.flashsim import FlashChip, SimulationClock
from repro.flashsim.device import DeviceGeometry
from repro.flashsim.flash_chip import FlashChipProfile, GENERIC_FLASH_CHIP_PROFILE
from repro.flashsim.ftl import PageMappingFTL


def _small_chip() -> FlashChip:
    """A tiny chip so garbage collection triggers quickly in tests."""
    profile = FlashChipProfile(
        name="tiny-nand",
        geometry=DeviceGeometry(page_size=256, pages_per_block=4, num_blocks=8),
        cost_model=GENERIC_FLASH_CHIP_PROFILE.cost_model,
    )
    return FlashChip(profile=profile, clock=SimulationClock())


class TestPageMappingFTL:
    def test_write_then_read(self):
        ftl = PageMappingFTL(_small_chip())
        ftl.write(0, b"hello")
        data, _latency = ftl.read(0)
        assert data == b"hello"

    def test_unwritten_logical_page_reads_empty(self):
        ftl = PageMappingFTL(_small_chip())
        data, _latency = ftl.read(3)
        assert data == b""

    def test_overwrite_returns_latest_value(self):
        ftl = PageMappingFTL(_small_chip())
        ftl.write(1, b"old")
        ftl.write(1, b"new")
        assert ftl.read(1)[0] == b"new"

    def test_overwrite_moves_physical_location(self):
        ftl = PageMappingFTL(_small_chip())
        ftl.write(1, b"old")
        first_location = ftl.physical_page_of(1)
        ftl.write(1, b"new")
        assert ftl.physical_page_of(1) != first_location

    def test_logical_capacity_below_physical(self):
        chip = _small_chip()
        ftl = PageMappingFTL(chip, overprovision_fraction=0.25)
        assert ftl.logical_pages == int(chip.geometry.total_pages * 0.75)

    def test_out_of_range_logical_page_rejected(self):
        ftl = PageMappingFTL(_small_chip())
        with pytest.raises(IndexError):
            ftl.write(ftl.logical_pages, b"x")

    def test_garbage_collection_reclaims_space(self):
        ftl = PageMappingFTL(_small_chip(), overprovision_fraction=0.25)
        # Repeatedly overwrite a small working set far beyond physical capacity;
        # without GC the chip would run out of clean blocks.
        for round_number in range(20):
            for logical in range(4):
                ftl.write(logical, b"round-%d" % round_number)
        assert ftl.gc_runs > 0
        for logical in range(4):
            assert ftl.read(logical)[0] == b"round-19"

    def test_gc_preserves_live_data(self):
        ftl = PageMappingFTL(_small_chip(), overprovision_fraction=0.25)
        ftl.write(5, b"keep-me")
        for _ in range(15):
            ftl.write(0, b"churn")
        assert ftl.read(5)[0] == b"keep-me"

    def test_trim_discards_mapping(self):
        ftl = PageMappingFTL(_small_chip())
        ftl.write(2, b"data")
        ftl.trim(2)
        assert ftl.read(2)[0] == b""
        assert ftl.physical_page_of(2) is None

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            PageMappingFTL(_small_chip(), overprovision_fraction=1.5)
        with pytest.raises(ValueError):
            PageMappingFTL(_small_chip(), gc_low_watermark_blocks=0)

    def test_write_batch(self):
        ftl = PageMappingFTL(_small_chip())
        ftl.write_batch(0, [b"a", b"b", b"c"])
        assert [ftl.read(i)[0] for i in range(3)] == [b"a", b"b", b"c"]
