"""Tests for consistent-hash shard routing and handoff accounting."""

import pytest

from repro.core.errors import ConfigurationError
from repro.service import RING_SPACE, ShardRouter
from repro.workloads import fingerprint_for


def sample_keys(count, namespace=b"router-test"):
    return [fingerprint_for(i, namespace=namespace) for i in range(count)]


class TestRouting:
    def test_route_is_deterministic_across_instances(self):
        keys = sample_keys(500)
        first = ShardRouter(["a", "b", "c", "d"]).route_many(keys)
        second = ShardRouter(["a", "b", "c", "d"]).route_many(keys)
        assert first == second

    def test_route_independent_of_declaration_order(self):
        keys = sample_keys(500)
        forward = ShardRouter(["a", "b", "c", "d"]).route_many(keys)
        backward = ShardRouter(["d", "c", "b", "a"]).route_many(keys)
        assert forward == backward

    def test_same_key_always_same_shard(self):
        router = ShardRouter(["a", "b", "c"])
        key = fingerprint_for(7)
        assert len({router.route(key) for _ in range(10)}) == 1

    def test_mixed_key_types_route_consistently(self):
        router = ShardRouter(["a", "b"])
        assert router.route(b"hello") == router.route("hello")

    def test_all_shards_receive_traffic(self):
        router = ShardRouter(["a", "b", "c", "d"], virtual_nodes=64)
        owners = set(router.route_many(sample_keys(2000)))
        assert owners == {"a", "b", "c", "d"}

    def test_virtual_nodes_smooth_the_split(self):
        keys = sample_keys(4000)
        coarse = ShardRouter(["a", "b", "c", "d"], virtual_nodes=128)
        counts = {}
        for owner in coarse.route_many(keys):
            counts[owner] = counts.get(owner, 0) + 1
        for owner, count in counts.items():
            share = count / len(keys)
            assert 0.10 < share < 0.45, (owner, share)

    def test_ownership_fractions_sum_to_one(self):
        router = ShardRouter(["a", "b", "c", "d", "e"])
        fractions = router.ownership_fractions()
        assert set(fractions) == {"a", "b", "c", "d", "e"}
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(value > 0 for value in fractions.values())

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            ShardRouter([])
        with pytest.raises(ConfigurationError):
            ShardRouter(["a", "a"])
        with pytest.raises(ConfigurationError):
            ShardRouter(["a"], virtual_nodes=0)


class TestMembershipChanges:
    def test_add_shard_is_monotone(self):
        """Consistent hashing: adding a shard only moves keys *to* it."""
        keys = sample_keys(2000)
        router = ShardRouter(["a", "b", "c"])
        before = router.route_many(keys)
        router.add_shard("d")
        after = router.route_many(keys)
        for old, new in zip(before, after):
            assert new == old or new == "d"

    def test_remove_shard_only_moves_its_keys(self):
        keys = sample_keys(2000)
        router = ShardRouter(["a", "b", "c", "d"])
        before = router.route_many(keys)
        router.remove_shard("d")
        after = router.route_many(keys)
        for old, new in zip(before, after):
            if old != "d":
                assert new == old
            else:
                assert new != "d"

    def test_add_then_remove_restores_routing(self):
        keys = sample_keys(1000)
        router = ShardRouter(["a", "b", "c"])
        before = router.route_many(keys)
        router.add_shard("d")
        router.remove_shard("d")
        assert router.route_many(keys) == before
        assert router.shard_ids == ("a", "b", "c")

    def test_membership_errors(self):
        router = ShardRouter(["a", "b"])
        with pytest.raises(ConfigurationError):
            router.add_shard("a")
        with pytest.raises(ConfigurationError):
            router.remove_shard("zzz")
        router.remove_shard("b")
        with pytest.raises(ConfigurationError):
            router.remove_shard("a")


class TestHandoffStats:
    def test_add_handoff_matches_new_ownership(self):
        router = ShardRouter(["a", "b", "c", "d"])
        handoff = router.add_shard("e")
        assert handoff.added == ("e",)
        assert handoff.removed == ()
        # Monotonicity: everything that moved was gained by the new shard.
        assert set(handoff.gained_fraction) == {"e"}
        assert handoff.gained_fraction["e"] == pytest.approx(handoff.moved_fraction)
        assert sum(handoff.lost_fraction.values()) == pytest.approx(handoff.moved_fraction)
        # The exact arc accounting matches the ring's post-change ownership.
        assert router.ownership_fractions()["e"] == pytest.approx(handoff.moved_fraction)

    def test_add_moves_roughly_one_over_n_plus_one(self):
        router = ShardRouter(["a", "b", "c", "d"], virtual_nodes=256)
        handoff = router.add_shard("e")
        assert 0.08 < handoff.moved_fraction < 0.35

    def test_remove_handoff_mirrors_add(self):
        router = ShardRouter(["a", "b", "c", "d"])
        added = router.add_shard("e")
        removed = router.remove_shard("e")
        assert removed.removed == ("e",)
        assert removed.moved_fraction == pytest.approx(added.moved_fraction)
        assert set(removed.lost_fraction) == {"e"}
        # Arcs flow back to exactly the shards that lost them on add.
        assert removed.gained_fraction.keys() == added.lost_fraction.keys()
        for shard_id, fraction in removed.gained_fraction.items():
            assert fraction == pytest.approx(added.lost_fraction[shard_id])

    def test_handoff_against_sampled_keys(self):
        """The exact arc fractions predict the observed key movement."""
        keys = sample_keys(8000)
        router = ShardRouter(["a", "b", "c"], virtual_nodes=128)
        before = router.route_many(keys)
        handoff = router.add_shard("d")
        after = router.route_many(keys)
        observed = sum(1 for old, new in zip(before, after) if old != new) / len(keys)
        assert observed == pytest.approx(handoff.moved_fraction, abs=0.03)

    def test_estimated_keys_moved(self):
        router = ShardRouter(["a", "b", "c"])
        handoff = router.add_shard("d")
        assert handoff.estimated_keys_moved(10_000) == round(
            handoff.moved_fraction * 10_000
        )

    def test_ring_space_constant(self):
        assert RING_SPACE == 1 << 64


class TestPreferenceList:
    """Replica placement: determinism, disjointness and the prefix-stable
    chain property under membership changes, checked property-style over
    seeded random ring states with RF in {1, 2, 3}."""

    @staticmethod
    def random_ring(rng, min_shards=4, max_shards=9):
        names = [f"node-{i}" for i in range(rng.randint(min_shards, max_shards))]
        rng.shuffle(names)
        virtual_nodes = rng.choice([16, 32, 64])
        return ShardRouter(names, virtual_nodes=virtual_nodes)

    def test_first_entry_is_the_route_owner(self):
        router = ShardRouter(["a", "b", "c", "d"])
        for key in sample_keys(500):
            assert router.preference_list(key, 3)[0] == router.route(key)

    def test_deterministic_across_instances(self):
        keys = sample_keys(200)
        first = ShardRouter(["a", "b", "c", "d"])
        second = ShardRouter(["d", "c", "b", "a"])
        for key in keys:
            assert first.preference_list(key, 3) == second.preference_list(key, 3)

    def test_entries_are_distinct_and_clamped(self):
        router = ShardRouter(["a", "b", "c"])
        for key in sample_keys(300):
            preference = router.preference_list(key, 3)
            assert len(preference) == len(set(preference)) == 3
            # Requests beyond the fleet size are clamped, never padded.
            assert router.preference_list(key, 10) == preference
        assert len(router.preference_list(b"k", 1)) == 1

    def test_shorter_lists_are_prefixes_of_longer_ones(self):
        router = ShardRouter(["a", "b", "c", "d", "e"])
        for key in sample_keys(300):
            full = router.preference_list(key, 5)
            for n in range(1, 5):
                assert router.preference_list(key, n) == full[:n]

    def test_invalid_size_rejected(self):
        router = ShardRouter(["a", "b"])
        with pytest.raises(ConfigurationError):
            router.preference_list(b"k", 0)

    def test_property_random_rings_determinism_and_disjointness(self):
        import random

        for seed in range(12):
            rng = random.Random(seed)
            router = self.random_ring(rng)
            twin = ShardRouter(sorted(router.shard_ids), virtual_nodes=router.virtual_nodes)
            for rf in (1, 2, 3):
                for key in sample_keys(100, namespace=b"prop-%d" % seed):
                    preference = router.preference_list(key, rf)
                    assert len(preference) == min(rf, len(router))
                    assert len(set(preference)) == len(preference)
                    assert preference == twin.preference_list(key, rf)

    def test_property_remove_shard_shifts_the_chain_exactly(self):
        """Removing a shard deletes it from every preference list and shifts
        the next distinct ring successor in; all other entries keep their
        positions (the exact-handoff property recovery relies on)."""
        import random

        for seed in range(12):
            rng = random.Random(1000 + seed)
            router = self.random_ring(rng, min_shards=5, max_shards=9)
            keys = sample_keys(150, namespace=b"chain-%d" % seed)
            for rf in (1, 2, 3):
                before = {key: router.preference_list(key, rf + 1) for key in keys}
                victim = rng.choice(sorted(router.shard_ids))
                router.remove_shard(victim)
                for key in keys:
                    # The rf-list after removal is exactly the (rf+1)-list
                    # before removal with the victim deleted, truncated: the
                    # successor shifts in, nothing else moves.
                    old = before[key]
                    expected = tuple(s for s in old if s != victim)[:rf]
                    assert router.preference_list(key, rf) == expected
                router.add_shard(victim)  # restore for the next rf round

    def test_remove_shard_handoff_arcs_match_new_owners(self):
        """Every arc the victim lost is gained by a shard that now appears in
        the preference lists of keys hashing into that arc."""
        router = ShardRouter(["a", "b", "c", "d", "e"], virtual_nodes=64)
        keys = sample_keys(2000, namespace=b"arcs")
        owned_before = [key for key in keys if router.route(key) == "c"]
        handoff = router.remove_shard("c")
        assert set(handoff.lost_fraction) == {"c"}
        gainers = set(handoff.gained_fraction)
        new_owners = {router.route(key) for key in owned_before}
        assert new_owners <= gainers
        assert sum(handoff.gained_fraction.values()) == pytest.approx(
            handoff.moved_fraction
        )
