"""Golden-boundary regression tests: the optimized chunker is bit-identical to seed.

The PR-5 chunker rewrite (removal table + skip-ahead scalar path, vectorised
candidate scan) must emit **exactly** the boundaries the original per-byte
loop emitted — same Rabin polynomial, same residue rule, same min/max
clamping.  These tests freeze that contract two ways:

* golden digests, computed from the *seed implementation before the rewrite*
  and hard-coded below: several payload sizes and min/avg/max shapes,
  covering the skip-ahead regime (``min >= WINDOW``), the window-filling
  regime (``min < WINDOW``), non-power-of-two averages, a forced ``max_size``
  cut and a payload shorter than ``min_size``;
* cross-checks of every execution path (auto, scalar, vectorised, and the
  verbatim ``reference_boundaries``) against those digests and each other.

If any of these digests ever changes, previously deduplicated content stops
matching its stored fingerprints — treat a failure here as data corruption,
not as a test to update.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.wanopt.chunking import HAVE_NUMPY, RabinChunker

# (case id) -> (payload seed, payload size, chunker kwargs, sha256 of the
# JSON boundary list, number of chunks, first boundaries, last boundary).
# Digests were produced by the pre-rewrite per-byte implementation.
GOLDEN = {
    "64k_avg4096_default": (
        101,
        64 * 1024,
        dict(average_size=4096),
        "7c29f73de8742aa48eccd7678ff0acacbd9861c4ff7563d4d98f552cb971be2c",
        19,
        [(0, 3041), (3041, 4119), (4119, 5244)],
        (64686, 65536),
    ),
    "64k_avg1024_default": (
        102,
        64 * 1024,
        dict(average_size=1024),
        "08ab0e1feb5140873813fef0a32accaf9de0001ad1248c51680902bd0a00549f",
        46,
        [(0, 1311), (1311, 2548), (2548, 3094)],
        (65102, 65536),
    ),
    "64k_avg4096_min512_max8192": (
        103,
        64 * 1024,
        dict(average_size=4096, min_size=512, max_size=8192),
        "1e40149f0f38a62d70627fc3a21a67c2f03a854b1d34e6e4340932f039957ce1",
        14,
        [(0, 1869), (1869, 10061), (10061, 18253)],
        (64578, 65536),
    ),
    "32k_avg256_min16": (
        104,
        32 * 1024,
        dict(average_size=256, min_size=16),
        "067d6e845ae44a0545a51dcbdfadd45a5bd934eb86dbe5be6c7fde8303091274",
        135,
        [(0, 35), (35, 177), (177, 384)],
        (32752, 32768),
    ),
    "16k_avg64_default": (
        105,
        16 * 1024,
        dict(average_size=64),
        "45555393c6265fd6febe7dc3147f858dc28812c9f66adc5faf686ba13be26e75",
        198,
        [(0, 65), (65, 93), (93, 117)],
        (16335, 16384),
    ),
    "20k_avg1000_default": (
        106,
        20 * 1024,
        dict(average_size=1000),
        "e94141d508302312dd9afb2da4abff7612202b293a528a5c60a95ea410d50652",
        24,
        [(0, 296), (296, 1324), (1324, 1681)],
        (20071, 20480),
    ),
    "256k_avg4096_default": (
        107,
        256 * 1024,
        dict(average_size=4096),
        "a73518885141b82be8355c40c209c895101b626cfb9feaf9c87da8503fde94de",
        46,
        [(0, 4443), (4443, 9258), (9258, 16992)],
        (253171, 262144),
    ),
    "3k_avg4096_shorter_than_min": (
        108,
        3 * 1024,
        dict(average_size=4096),
        "722b33f77ccd4f3d8928fc0d29ef3701d6b90bb2766709e8b323495c76204880",
        2,
        [(0, 2226), (2226, 3072)],
        (2226, 3072),
    ),
}

MODES = [None, False] + ([True] if HAVE_NUMPY else [])


def boundary_digest(boundaries) -> str:
    flat = [(boundary.start, boundary.end) for boundary in boundaries]
    return hashlib.sha256(json.dumps(flat).encode()).hexdigest()


@pytest.mark.parametrize("case", sorted(GOLDEN))
@pytest.mark.parametrize("vectorized", MODES)
def test_boundaries_match_golden_digest(case, vectorized):
    seed, size, kwargs, digest, count, first, last = GOLDEN[case]
    data = random.Random(seed).randbytes(size)
    min_size = kwargs.get("min_size", max(1, kwargs["average_size"] // 4))
    if vectorized and min_size < RabinChunker.WINDOW_SIZE:
        # Explicitly demanding the vectorised path below the window is a
        # configuration error (it cannot run there); auto mode falls back.
        with pytest.raises(ValueError):
            RabinChunker(**kwargs, vectorized=True)
        chunker = RabinChunker(**kwargs)
    else:
        chunker = RabinChunker(**kwargs, vectorized=vectorized)
    boundaries = chunker.boundaries(data)
    assert len(boundaries) == count
    assert [(b.start, b.end) for b in boundaries[: len(first)]] == first
    assert (boundaries[-1].start, boundaries[-1].end) == last
    assert boundary_digest(boundaries) == digest


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_reference_implementation_matches_golden_digest(case):
    """The frozen reference itself must still reproduce the seed digests."""
    seed, size, kwargs, digest, _, _, _ = GOLDEN[case]
    data = random.Random(seed).randbytes(size)
    chunker = RabinChunker(**kwargs)
    assert boundary_digest(chunker.reference_boundaries(data)) == digest


def test_all_paths_agree_on_memoryview_and_bytearray_input():
    data = random.Random(109).randbytes(24 * 1024)
    chunker = RabinChunker(average_size=1024)
    want = chunker.boundaries(data)
    for view in (memoryview(data), bytearray(data)):
        for vectorized in MODES:
            assert RabinChunker(average_size=1024, vectorized=vectorized).boundaries(view) == want


def test_split_yields_zero_copy_views_tiling_the_input():
    data = random.Random(110).randbytes(48 * 1024)
    chunker = RabinChunker(average_size=2048)
    pieces = list(chunker.split(data))
    assert all(isinstance(piece, memoryview) for piece in pieces)
    assert b"".join(pieces) == data
    # Zero-copy: every view aliases the original buffer.
    assert all(piece.obj is data for piece in pieces)


def test_vectorized_flag_validation_and_fallback():
    if HAVE_NUMPY:
        assert RabinChunker(average_size=4096, vectorized=True)._vectorized is True
        # Demanding the vectorised path where it cannot run is rejected
        # rather than silently falling back to the scalar path.
        with pytest.raises(ValueError):
            RabinChunker(average_size=256, min_size=16, vectorized=True)
    else:
        with pytest.raises(ValueError):
            RabinChunker(average_size=4096, vectorized=True)
    # min_size below the window silently selects the scalar path on auto.
    chunker = RabinChunker(average_size=256, min_size=16)
    data = random.Random(111).randbytes(8 * 1024)
    assert chunker.boundaries(data) == chunker.reference_boundaries(data)


def test_skip_per_chunk_matches_min_size_geometry():
    assert RabinChunker(average_size=4096).skip_per_chunk == 1024 - 48
    assert RabinChunker(average_size=256, min_size=16).skip_per_chunk == 0
    assert RabinChunker(average_size=4096, min_size=48).skip_per_chunk == 0
