"""Tests for the per-incarnation Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BloomFilter, false_positive_rate, optimal_num_hashes


class TestHelpers:
    def test_optimal_num_hashes(self):
        # m/n = 16 bits per item -> about 11 hash functions.
        assert optimal_num_hashes(16.0) == 11
        assert optimal_num_hashes(1.0) == 1

    def test_optimal_num_hashes_rejects_non_positive(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(0)

    def test_false_positive_rate_monotone_in_items(self):
        sparse = false_positive_rate(num_bits=1024, num_items=10, num_hashes=7)
        dense = false_positive_rate(num_bits=1024, num_items=500, num_hashes=7)
        assert sparse < dense

    def test_false_positive_rate_empty_filter_is_zero(self):
        assert false_positive_rate(1024, 0, 7) == 0.0

    def test_false_positive_rate_validation(self):
        with pytest.raises(ValueError):
            false_positive_rate(0, 1, 1)
        with pytest.raises(ValueError):
            false_positive_rate(10, -1, 1)
        with pytest.raises(ValueError):
            false_positive_rate(10, 1, 0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(100)
        keys = [b"key-%d" % i for i in range(100)]
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter.for_capacity(10)
        assert b"anything" not in bloom

    def test_false_positive_rate_is_low_when_properly_sized(self):
        bloom = BloomFilter.for_capacity(500, bits_per_item=16)
        bloom.update(b"member-%d" % i for i in range(500))
        false_positives = sum(1 for i in range(5000) if b"absent-%d" % i in bloom)
        assert false_positives / 5000 < 0.01

    def test_item_count(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add(b"a")
        bloom.add(b"b")
        assert bloom.item_count == 2

    def test_clear(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add(b"a")
        bloom.clear()
        assert b"a" not in bloom
        assert bloom.item_count == 0

    def test_copy_is_independent(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add(b"a")
        clone = bloom.copy()
        bloom.add(b"b")
        assert b"a" in clone
        assert b"b" not in clone or clone.item_count == 1  # copy did not gain new items

    def test_fill_fraction_grows(self):
        bloom = BloomFilter.for_capacity(100)
        before = bloom.fill_fraction()
        bloom.update(b"k-%d" % i for i in range(100))
        assert bloom.fill_fraction() > before

    def test_expected_false_positive_rate_tracks_fill(self):
        bloom = BloomFilter.for_capacity(100, bits_per_item=16)
        assert bloom.expected_false_positive_rate() == 0.0
        bloom.update(b"k-%d" % i for i in range(100))
        assert 0.0 < bloom.expected_false_positive_rate() < 0.01

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0, num_hashes=3)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=8, num_hashes=0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0)

    def test_may_contain_alias(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add(b"z")
        assert bloom.may_contain(b"z")

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=64, unique=True))
    def test_property_every_added_key_is_reported_present(self, keys):
        bloom = BloomFilter.for_capacity(max(len(keys), 1))
        bloom.update(keys)
        assert all(key in bloom for key in keys)


class TestBitsetStorage:
    """The bytearray bitset introduced by the hash-once/perf PR."""

    def test_iter_set_bits_matches_added_positions(self):
        bloom = BloomFilter(num_bits=256, num_hashes=4)
        expected = set()
        for i in range(20):
            key = b"bit-%d" % i
            expected.update(bloom.bit_positions(key))
            bloom.add(key)
        assert set(bloom.iter_set_bits()) == expected

    def test_iter_set_bits_empty(self):
        assert list(BloomFilter(64, 2).iter_set_bits()) == []

    def test_fill_fraction_is_exact_popcount(self):
        bloom = BloomFilter(num_bits=100, num_hashes=3)
        bloom.update(b"fill-%d" % i for i in range(40))
        ones = len(set(bloom.iter_set_bits()))
        assert bloom.fill_fraction() == ones / 100

    def test_bit_storage_padded_to_whole_words(self):
        for num_bits in (1, 7, 8, 63, 64, 65, 100):
            bloom = BloomFilter(num_bits=num_bits, num_hashes=2)
            assert len(bloom._bits) % 8 == 0
            assert len(bloom._bits) * 8 >= num_bits
            bloom.add(b"x")
            assert all(pos < num_bits for pos in bloom.iter_set_bits())

    def test_digest_keys_equal_byte_keys(self):
        from repro.core.hashing import KeyDigest

        plain = BloomFilter(num_bits=512, num_hashes=5)
        via_digest = BloomFilter(num_bits=512, num_hashes=5)
        keys = [b"dk-%d" % i for i in range(50)]
        plain.update(keys)
        via_digest.update(KeyDigest(key) for key in keys)
        assert plain._bits == via_digest._bits
        assert all(KeyDigest(key) in plain for key in keys)
        assert all(key in via_digest for key in keys)

    def test_copy_after_clear_round_trip(self):
        bloom = BloomFilter(num_bits=128, num_hashes=3)
        bloom.add(b"a")
        clone = bloom.copy()
        bloom.clear()
        assert b"a" in clone
        assert b"a" not in bloom
        assert len(bloom._bits) == len(clone._bits)
