"""Tests for the in-memory buffer of a super table."""

import pytest

from repro.core.buffer import Buffer


def _buffer(capacity=16, slots=32, bloom_bits=256):
    return Buffer(capacity_items=capacity, num_slots=slots, bloom_bits=bloom_bits)


class TestBuffer:
    def test_put_and_get(self):
        buffer = _buffer()
        assert buffer.put(b"key", b"value") is True
        assert buffer.get(b"key") == b"value"

    def test_is_full_at_capacity(self):
        buffer = _buffer(capacity=4)
        for i in range(4):
            assert buffer.put(b"k%d" % i, b"v") is True
        assert buffer.is_full

    def test_put_refused_when_full(self):
        buffer = _buffer(capacity=4)
        for i in range(4):
            buffer.put(b"k%d" % i, b"v")
        assert buffer.put(b"new", b"v") is False

    def test_existing_key_can_be_updated_even_when_full(self):
        buffer = _buffer(capacity=4)
        for i in range(4):
            buffer.put(b"k%d" % i, b"v")
        assert buffer.put(b"k0", b"updated") is True
        assert buffer.get(b"k0") == b"updated"

    def test_bloom_filter_tracks_inserted_keys(self):
        buffer = _buffer()
        buffer.put(b"key", b"value")
        assert b"key" in buffer.bloom_filter

    def test_delete(self):
        buffer = _buffer()
        buffer.put(b"key", b"value")
        assert buffer.delete(b"key") is True
        assert buffer.get(b"key") is None

    def test_drain_returns_items_and_frozen_filter(self):
        buffer = _buffer(capacity=8)
        for i in range(5):
            buffer.put(b"k%d" % i, b"v%d" % i)
        items, frozen = buffer.drain()
        assert items == {b"k%d" % i: b"v%d" % i for i in range(5)}
        assert all(b"k%d" % i in frozen for i in range(5))
        # After draining, the buffer is empty and its live filter reset.
        assert len(buffer) == 0
        assert b"k0" not in buffer.bloom_filter

    def test_drain_of_empty_buffer(self):
        items, frozen = _buffer().drain()
        assert items == {}
        assert frozen.item_count == 0

    def test_len_counts_items(self):
        buffer = _buffer()
        buffer.put(b"a", b"1")
        buffer.put(b"b", b"2")
        assert len(buffer) == 2

    def test_items_snapshot(self):
        buffer = _buffer()
        buffer.put(b"a", b"1")
        snapshot = buffer.items()
        buffer.put(b"b", b"2")
        assert snapshot == {b"a": b"1"}

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Buffer(capacity_items=0, num_slots=8, bloom_bits=64)
        with pytest.raises(ValueError):
            Buffer(capacity_items=16, num_slots=8, bloom_bits=64)
