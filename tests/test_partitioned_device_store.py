"""Tests for the per-partition SSD layout (the §5.2 ablation store)."""

import pytest

from repro.core import BufferHash, CLAMConfig, ConfigurationError, PartitionedDeviceStore
from repro.flashsim import SSD, SimulationClock


def _store(num_partitions=4, pages_per_incarnation=8):
    ssd = SSD(clock=SimulationClock())
    return PartitionedDeviceStore(ssd, num_partitions, pages_per_incarnation), ssd


class TestPartitionedDeviceStore:
    def test_round_trip(self):
        store, _ssd = _store()
        address, latency = store.write_incarnation_for(0, [b"a", b"b"])
        assert latency > 0
        assert store.read_page(address, 0)[0] == b"a"
        assert store.read_page(address, 1)[0] == b"b"
        pages, _lat = store.read_incarnation(address, 2)
        assert pages == [b"a", b"b"]

    def test_partitions_do_not_overlap(self):
        store, _ssd = _store()
        address_a, _ = store.write_incarnation_for(0, [b"from-0"])
        address_b, _ = store.write_incarnation_for(1, [b"from-1"])
        assert abs(address_a - address_b) >= store.partition_pages
        assert store.read_page(address_a, 0)[0] == b"from-0"
        assert store.read_page(address_b, 0)[0] == b"from-1"

    def test_slots_wrap_within_partition(self):
        store, _ssd = _store(num_partitions=4, pages_per_incarnation=8)
        addresses = [
            store.write_incarnation_for(0, [b"x"])[0] for _ in range(store.slots_per_partition + 1)
        ]
        assert addresses[0] == addresses[-1]
        assert all(addr < store.partition_pages for addr in addresses)

    def test_oversized_incarnation_rejected(self):
        store, _ssd = _store(pages_per_incarnation=2)
        with pytest.raises(ConfigurationError):
            store.write_incarnation_for(0, [b"a", b"b", b"c"])

    def test_too_many_owners_rejected(self):
        store, _ssd = _store(num_partitions=2)
        store.write_incarnation_for(0, [b"a"])
        store.write_incarnation_for(1, [b"b"])
        with pytest.raises(ConfigurationError):
            store.write_incarnation_for(2, [b"c"])

    def test_invalid_construction(self):
        ssd = SSD(clock=SimulationClock())
        with pytest.raises(ValueError):
            PartitionedDeviceStore(ssd, 0, 8)
        with pytest.raises(ConfigurationError):
            PartitionedDeviceStore(ssd, 1, ssd.geometry.total_pages + 1)

    def test_bufferhash_correct_on_partitioned_layout(self):
        """The layout is slower but must remain functionally correct."""
        clock = SimulationClock()
        ssd = SSD(clock=clock)
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        store = PartitionedDeviceStore(
            ssd,
            num_partitions=config.num_super_tables,
            pages_per_incarnation=config.pages_per_incarnation(ssd.geometry.page_size) * 2,
        )
        bufferhash = BufferHash(config, device=ssd, clock=clock, store=store)
        keys = [b"pk-%d" % i for i in range(1_000)]
        for key in keys:
            bufferhash.insert(key, b"v" + key)
        guaranteed = config.num_super_tables * config.buffer_capacity_items
        assert all(bufferhash.lookup(key).found for key in keys[-guaranteed:])

    def test_whole_log_cheaper_than_partitioned_on_ssd(self):
        """The §5.2 claim the ablation benchmark quantifies."""
        config = CLAMConfig.scaled(
            num_super_tables=8, buffer_capacity_items=64, incarnations_per_table=4
        )

        def mean_insert(use_partitioned):
            clock = SimulationClock()
            ssd = SSD(clock=clock)
            store = None
            if use_partitioned:
                store = PartitionedDeviceStore(
                    ssd,
                    num_partitions=config.num_super_tables,
                    pages_per_incarnation=config.pages_per_incarnation(ssd.geometry.page_size) * 2,
                )
            bufferhash = BufferHash(config, device=ssd, clock=clock, store=store)
            total = 0.0
            count = 5_000
            for i in range(count):
                total += bufferhash.insert(b"cmp-%d" % i, b"v").latency_ms
            return total / count

        assert mean_insert(use_partitioned=False) < mean_insert(use_partitioned=True)
