"""Tests for CLAM configuration and the DRAM-side cost model."""

import pytest

from repro.core import CLAMConfig, ConfigurationError, MemoryCostModel


class TestMemoryCostModel:
    def test_bloom_query_cost_naive_scales_with_incarnations(self):
        model = MemoryCostModel()
        assert model.bloom_query_cost(16, bit_sliced=False) > model.bloom_query_cost(
            4, bit_sliced=False
        )

    def test_bloom_query_cost_sliced_is_flat(self):
        model = MemoryCostModel()
        assert model.bloom_query_cost(16, bit_sliced=True) == model.bloom_query_cost(
            4, bit_sliced=True
        )

    def test_bit_slicing_cheaper_at_many_incarnations(self):
        """The point of §5.1.3: with many incarnations, one sliced query beats
        probing every per-incarnation filter."""
        model = MemoryCostModel()
        assert model.bloom_query_cost(16, bit_sliced=True) < model.bloom_query_cost(
            16, bit_sliced=False
        )

    def test_zero_incarnations_cost_nothing(self):
        assert MemoryCostModel().bloom_query_cost(0, bit_sliced=False) == 0.0


class TestCLAMConfig:
    def test_defaults_are_valid(self):
        config = CLAMConfig()
        assert config.num_super_tables > 0
        assert config.buffer_slots >= config.buffer_capacity_items

    def test_buffer_slots_account_for_utilization(self):
        config = CLAMConfig(buffer_capacity_items=100, buffer_utilization=0.5)
        assert config.buffer_slots == 200

    def test_buffer_bytes(self):
        config = CLAMConfig(buffer_capacity_items=100, buffer_utilization=0.5, entry_size_bytes=16)
        assert config.buffer_bytes == 200 * 16

    def test_pages_per_incarnation(self):
        config = CLAMConfig(buffer_capacity_items=128, buffer_utilization=0.5, entry_size_bytes=16)
        assert config.pages_per_incarnation(512) == (256 * 16) // 512

    def test_pages_per_incarnation_rejects_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            CLAMConfig().pages_per_incarnation(0)

    def test_total_items_capacity(self):
        config = CLAMConfig(num_super_tables=4, buffer_capacity_items=100)
        assert config.total_items_capacity(9) == 4 * 100 * 10

    def test_bloom_bits_per_incarnation(self):
        config = CLAMConfig(buffer_capacity_items=100, bloom_bits_per_entry=16)
        assert config.bloom_bits_per_incarnation() == 1600

    def test_with_overrides(self):
        config = CLAMConfig().with_overrides(num_super_tables=3)
        assert config.num_super_tables == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_super_tables": 0},
            {"buffer_capacity_items": 0},
            {"buffer_utilization": 0.0},
            {"buffer_utilization": 1.5},
            {"entry_size_bytes": 0},
            {"incarnations_per_table": 0},
            {"bloom_bits_per_entry": 0},
            {"eviction_policy_name": "bogus"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CLAMConfig(**kwargs)

    def test_paper_scale_matches_section_7_1_1(self):
        config = CLAMConfig.paper_scale()
        assert config.num_super_tables == 16_384
        assert config.buffer_capacity_items == 4_096
        assert config.incarnations_per_table == 16
        # 4096 entries at 50% utilisation and 16 bytes/entry = a 128 KB buffer.
        assert config.buffer_bytes == 128 * 1024
        # 2 GB total across all buffers, as the paper configures.
        assert config.total_buffer_bytes == 2 * 1024**3

    def test_scaled_preserves_ratio_fields(self):
        config = CLAMConfig.scaled(num_super_tables=8, buffer_capacity_items=64)
        assert config.num_super_tables == 8
        assert config.buffer_capacity_items == 64
        assert config.buffer_utilization == 0.5
