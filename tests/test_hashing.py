"""Tests for the deterministic hashing helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hashing import double_hashes, fnv1a_64, hash_key, to_key_bytes


class TestToKeyBytes:
    def test_bytes_pass_through(self):
        assert to_key_bytes(b"abc") == b"abc"

    def test_bytearray_and_memoryview(self):
        assert to_key_bytes(bytearray(b"abc")) == b"abc"
        assert to_key_bytes(memoryview(b"abc")) == b"abc"

    def test_string_utf8(self):
        assert to_key_bytes("héllo") == "héllo".encode("utf-8")

    def test_integer_big_endian(self):
        assert to_key_bytes(0) == b"\x00"
        assert to_key_bytes(256) == b"\x01\x00"

    def test_negative_integer_rejected(self):
        with pytest.raises(ValueError):
            to_key_bytes(-1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            to_key_bytes(3.14)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_distinct_integers_map_to_distinct_bytes(self, value):
        assert int.from_bytes(to_key_bytes(value), "big") == value


class TestFNV:
    def test_deterministic(self):
        assert fnv1a_64(b"hello") == fnv1a_64(b"hello")

    def test_seed_changes_value(self):
        assert fnv1a_64(b"hello", seed=1) != fnv1a_64(b"hello", seed=2)

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"hello") != fnv1a_64(b"hellp")

    def test_fits_in_64_bits(self):
        assert 0 <= fnv1a_64(b"anything" * 10) < 2**64

    @given(st.binary(min_size=0, max_size=64))
    def test_always_in_range(self, data):
        assert 0 <= fnv1a_64(data) < 2**64


class TestHashKey:
    def test_accepts_all_key_types(self):
        assert hash_key(b"a") == hash_key(b"a")
        assert isinstance(hash_key("string"), int)
        assert isinstance(hash_key(42), int)

    def test_distribution_roughly_uniform(self):
        buckets = [0] * 16
        for i in range(16_000):
            buckets[hash_key(b"key-%d" % i) % 16] += 1
        assert min(buckets) > 700
        assert max(buckets) < 1300


class TestDoubleHashes:
    def test_count_and_range(self):
        values = double_hashes(b"key", count=7, modulus=100)
        assert len(values) == 7
        assert all(0 <= v < 100 for v in values)

    def test_deterministic(self):
        assert double_hashes(b"key", 5, 64) == double_hashes(b"key", 5, 64)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            double_hashes(b"key", 0, 10)
        with pytest.raises(ValueError):
            double_hashes(b"key", 3, 0)

    @given(st.binary(min_size=1, max_size=32), st.integers(2, 10), st.integers(8, 1024))
    def test_property_count_and_range(self, key, count, modulus):
        values = double_hashes(key, count, modulus)
        assert len(values) == count
        assert all(0 <= v < modulus for v in values)
