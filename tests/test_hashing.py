"""Tests for the deterministic hashing helpers and the KeyDigest pipeline."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hashing import (
    BLOOM_SEED_H1,
    BLOOM_SEED_H2,
    CUCKOO_SEED_FIRST,
    CUCKOO_SEED_SECOND,
    PAGE_SEED,
    PARTITION_SEED,
    RING_SEED,
    KeyDigest,
    as_digest,
    clear_digest_cache,
    count_hash_calls,
    digest_cache_info,
    double_hashes,
    fnv1a_64,
    hash_key,
    key_data,
    set_digest_cache_capacity,
    to_key_bytes,
)

#: The per-layer seeds whose derived values define the on-flash layout.
LAYOUT_SEEDS = (
    PARTITION_SEED,
    CUCKOO_SEED_FIRST,
    CUCKOO_SEED_SECOND,
    BLOOM_SEED_H1,
    BLOOM_SEED_H2,
    PAGE_SEED,
    RING_SEED,
)


class TestToKeyBytes:
    def test_bytes_pass_through(self):
        assert to_key_bytes(b"abc") == b"abc"

    def test_bytearray_and_memoryview(self):
        assert to_key_bytes(bytearray(b"abc")) == b"abc"
        assert to_key_bytes(memoryview(b"abc")) == b"abc"

    def test_string_utf8(self):
        assert to_key_bytes("héllo") == "héllo".encode("utf-8")

    def test_integer_big_endian(self):
        assert to_key_bytes(0) == b"\x00"
        assert to_key_bytes(256) == b"\x01\x00"

    def test_negative_integer_rejected(self):
        with pytest.raises(ValueError):
            to_key_bytes(-1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            to_key_bytes(3.14)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_distinct_integers_map_to_distinct_bytes(self, value):
        assert int.from_bytes(to_key_bytes(value), "big") == value

    def test_cross_type_collision_is_frozen_behaviour(self):
        """Regression: different key *types* share one canonical byte space.

        The int ``0x41``, the bytes ``b"A"`` and the str ``"A"`` all encode
        to ``b"A"`` and are therefore the same key (documented in
        ``to_key_bytes``).  Freezing this keeps the on-flash layout stable;
        if it ever needs to change, it is a breaking format change, not a
        bug fix.
        """
        assert to_key_bytes(0x41) == to_key_bytes(b"A") == to_key_bytes("A") == b"A"
        # The collision propagates through every derived hash, as specified.
        for seed in LAYOUT_SEEDS:
            assert hash_key(0x41, seed) == hash_key(b"A", seed)


class TestFNV:
    def test_deterministic(self):
        assert fnv1a_64(b"hello") == fnv1a_64(b"hello")

    def test_seed_changes_value(self):
        assert fnv1a_64(b"hello", seed=1) != fnv1a_64(b"hello", seed=2)

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"hello") != fnv1a_64(b"hellp")

    def test_fits_in_64_bits(self):
        assert 0 <= fnv1a_64(b"anything" * 10) < 2**64

    @given(st.binary(min_size=0, max_size=64))
    def test_always_in_range(self, data):
        assert 0 <= fnv1a_64(data) < 2**64


class TestHashKey:
    def test_accepts_all_key_types(self):
        assert hash_key(b"a") == hash_key(b"a")
        assert isinstance(hash_key("string"), int)
        assert isinstance(hash_key(42), int)

    def test_distribution_roughly_uniform(self):
        buckets = [0] * 16
        for i in range(16_000):
            buckets[hash_key(b"key-%d" % i) % 16] += 1
        assert min(buckets) > 700
        assert max(buckets) < 1300


class TestDoubleHashes:
    def test_count_and_range(self):
        values = double_hashes(b"key", count=7, modulus=100)
        assert len(values) == 7
        assert all(0 <= v < 100 for v in values)

    def test_deterministic(self):
        assert double_hashes(b"key", 5, 64) == double_hashes(b"key", 5, 64)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            double_hashes(b"key", 0, 10)
        with pytest.raises(ValueError):
            double_hashes(b"key", 3, 0)

    @given(st.binary(min_size=1, max_size=32), st.integers(2, 10), st.integers(8, 1024))
    def test_property_count_and_range(self, key, count, modulus):
        values = double_hashes(key, count, modulus)
        assert len(values) == count
        assert all(0 <= v < modulus for v in values)


#: Every supported key representation of the same underlying bytes b"A".
def _representations(data: bytes):
    reps = [data, bytearray(data), memoryview(data)]
    try:
        reps.append(data.decode("utf-8"))
    except UnicodeDecodeError:
        pass
    if data and data[0] != 0:  # int encoding strips leading zero bytes
        reps.append(int.from_bytes(data, "big"))
    return reps


class TestKeyDigest:
    """The hash-once pipeline must be bit-identical to direct seeded hashing."""

    @given(st.binary(min_size=1, max_size=32))
    def test_digest_equals_direct_hash_for_every_layout_seed(self, data):
        digest = KeyDigest(data)
        for seed in LAYOUT_SEEDS:
            assert digest.digest(seed) == fnv1a_64(data, seed)

    @given(st.binary(min_size=1, max_size=32))
    def test_all_key_representations_agree(self, data):
        expected = {seed: fnv1a_64(data, seed) for seed in LAYOUT_SEEDS}
        for representation in _representations(data):
            digest = KeyDigest(representation)
            assert digest.data == data
            for seed in LAYOUT_SEEDS:
                assert digest.digest(seed) == expected[seed]

    @given(st.binary(min_size=1, max_size=32), st.integers(1, 12), st.integers(8, 4096))
    def test_bloom_positions_equal_double_hashes(self, data, count, modulus):
        digest = KeyDigest(data)
        assert digest.bloom_positions(count, modulus) == double_hashes(data, count, modulus)
        # Memoised: the same list object answers repeated queries.
        assert digest.bloom_positions(count, modulus) is digest.bloom_positions(count, modulus)

    @given(st.binary(min_size=1, max_size=32), st.integers(2, 1 << 20))
    def test_derived_moduli_equal_direct_implementation(self, data, modulus):
        digest = KeyDigest(data)
        assert digest.digest(PARTITION_SEED) % modulus == hash_key(data, PARTITION_SEED) % modulus
        assert digest.digest(PAGE_SEED) % modulus == hash_key(data, PAGE_SEED) % modulus
        assert digest.digest(RING_SEED) == hash_key(data, RING_SEED)

    def test_digest_is_accepted_as_a_key(self):
        digest = KeyDigest(b"some-key")
        assert to_key_bytes(digest) == b"some-key"
        assert key_data(digest) == b"some-key"
        for seed in LAYOUT_SEEDS:
            assert hash_key(digest, seed) == hash_key(b"some-key", seed)
        assert double_hashes(digest, 4, 128) == double_hashes(b"some-key", 4, 128)

    def test_double_hashes_validation_applies_to_digests_too(self):
        digest = KeyDigest(b"k")
        with pytest.raises(ValueError):
            double_hashes(digest, 0, 10)
        with pytest.raises(ValueError):
            double_hashes(digest, 3, 0)

    def test_memoisation_hashes_each_seed_once(self):
        digest = KeyDigest(b"memo-key")
        with count_hash_calls() as log:
            for _ in range(5):
                digest.digest(PARTITION_SEED)
                digest.bloom_positions(7, 512)
                digest.bloom_positions(7, 1024)
        # One pass for the partition seed, one each for the two Bloom seeds.
        assert log.by_seed == {PARTITION_SEED: 1, BLOOM_SEED_H1: 1, BLOOM_SEED_H2: 1}


class TestGoldenValues:
    """Frozen digests guarding the deterministic on-flash layout.

    These constants were captured from the pre-KeyDigest implementation; any
    change to them means existing simulated flash layouts (and all recorded
    benchmark expectations) silently moved.
    """

    GOLDEN = {
        (b"golden-key", 0x0): 0x47860F35C2E0D4C6,
        (b"golden-key", PARTITION_SEED): 0x900FDD05BDE242FE,
        (b"golden-key", CUCKOO_SEED_FIRST): 0xFE83D1827E8817E5,
        (b"golden-key", CUCKOO_SEED_SECOND): 0x59C00E5C0047F19B,
        (b"golden-key", BLOOM_SEED_H1): 0x11848211560987A9,
        (b"golden-key", BLOOM_SEED_H2): 0x415FB40ACA43A554,
        (b"golden-key", PAGE_SEED): 0x844CE565914F3B28,
        (b"golden-key", RING_SEED): 0x7FED164E68CF2977,
        (b"A", PARTITION_SEED): 0x238B2A0E1A38BBD6,
        (b"\x00", PARTITION_SEED): 0xEA656CC3365C64A9,
        (b"fingerprint-0123456789", PAGE_SEED): 0x538FA03E687B72F2,
        (b"fingerprint-0123456789", RING_SEED): 0xB7A79DED6E638915,
    }

    def test_golden_digests(self):
        for (data, seed), expected in self.GOLDEN.items():
            assert fnv1a_64(data, seed) == expected
            assert KeyDigest(data).digest(seed) == expected

    def test_golden_string_and_int_keys(self):
        assert hash_key("héllo", PARTITION_SEED) == 0xFD6DF457A0561E22
        assert hash_key(0, PARTITION_SEED) == 0xEA656CC3365C64A9  # encodes as b"\x00"
        assert hash_key(256, PARTITION_SEED) == 0x76C4033D14A038F6

    def test_golden_double_hashes(self):
        assert double_hashes(b"golden-key", 5, 1024) == [937, 254, 595, 936, 253]
        assert double_hashes("héllo", 3, 509) == [294, 435, 67]

    def test_golden_empty_key(self):
        assert fnv1a_64(b"") == 0xEFD01F60BA992926
        assert fnv1a_64(b"", 7) == 0x6478982A988B81B4


class TestDigestCache:
    def setup_method(self):
        clear_digest_cache()
        set_digest_cache_capacity(1 << 16)

    def teardown_method(self):
        clear_digest_cache()
        set_digest_cache_capacity(1 << 16)

    def test_cache_returns_same_digest_object(self):
        first = as_digest(b"cache-key")
        second = as_digest(b"cache-key")
        assert first is second

    def test_passing_a_digest_through_is_identity(self):
        digest = as_digest(b"cache-key")
        assert as_digest(digest) is digest

    def test_equivalent_representations_share_one_entry(self):
        assert as_digest(b"A") is as_digest("A") is as_digest(0x41)

    def test_capacity_is_bounded_fifo(self):
        set_digest_cache_capacity(4)
        digests = [as_digest(b"bound-%d" % i) for i in range(8)]
        info = digest_cache_info()
        assert info["size"] <= 4
        # Oldest entries were evicted; a re-request builds a fresh digest.
        assert as_digest(b"bound-0") is not digests[0]
        # Newest entry survived.
        assert as_digest(b"bound-7") is digests[7]

    def test_zero_capacity_disables_caching(self):
        set_digest_cache_capacity(0)
        assert as_digest(b"k") is not as_digest(b"k")
        assert digest_cache_info()["size"] == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            set_digest_cache_capacity(-1)

    def test_clear(self):
        as_digest(b"x")
        clear_digest_cache()
        assert digest_cache_info()["size"] == 0


class TestHashCallCounting:
    def test_counts_by_seed_and_layer(self):
        with count_hash_calls() as log:
            fnv1a_64(b"abc", PARTITION_SEED)
            fnv1a_64(b"abc", PARTITION_SEED)
            fnv1a_64(b"abc", BLOOM_SEED_H1)
        assert log.by_seed == {PARTITION_SEED: 2, BLOOM_SEED_H1: 1}
        assert log.by_layer() == {"partition": 2, "bloom_h1": 1}
        assert log.total == 3

    def test_digest_builds_counted(self):
        clear_digest_cache()
        with count_hash_calls() as log:
            KeyDigest(b"one")
            as_digest(b"two")
            as_digest(b"two")  # cache hit: no new build
        assert log.digest_builds == 2
        clear_digest_cache()

    def test_counting_disabled_outside_context(self):
        with count_hash_calls() as log:
            pass
        fnv1a_64(b"abc", PARTITION_SEED)
        assert log.total == 0

    def test_snapshot_shape(self):
        with count_hash_calls() as log:
            fnv1a_64(b"abc", PAGE_SEED)
        snapshot = log.snapshot()
        assert snapshot["fnv_incarnation_page"] == 1.0
        assert snapshot["fnv_total"] == 1.0
        assert snapshot["digest_builds"] == 0.0
