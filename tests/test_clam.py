"""Tests for the CLAM facade (device selection, stats, ablation modes)."""

import pytest

from repro.core import CLAM, CLAMConfig, ConfigurationError, build_device
from repro.flashsim import DRAMDevice, FlashChip, MagneticDisk, SSD, SimulationClock


class TestBuildDevice:
    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("intel-ssd", SSD),
            ("transcend-ssd", SSD),
            ("disk", MagneticDisk),
            ("flash-chip", FlashChip),
            ("dram", DRAMDevice),
        ],
    )
    def test_profiles(self, name, expected_type):
        device = build_device(name)
        assert isinstance(device, expected_type)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            build_device("floppy-disk")

    def test_intel_and_transcend_use_different_profiles(self):
        assert build_device("intel-ssd").profile.name != build_device("transcend-ssd").profile.name


class TestCLAMBasics:
    def test_insert_lookup_delete(self, small_clam):
        small_clam.insert(b"key", b"value")
        assert small_clam.get(b"key") == b"value"
        assert b"key" in small_clam
        small_clam.delete(b"key")
        assert small_clam.get(b"key") is None

    def test_accepts_device_instance(self, small_config):
        clock = SimulationClock()
        device = SSD(clock=clock)
        clam = CLAM(small_config, storage=device)
        clam.insert(b"key", b"value")
        assert clam.get(b"key") == b"value"
        assert clam.device is device

    def test_mismatched_clock_rejected(self, small_config):
        device = SSD(clock=SimulationClock())
        with pytest.raises(ConfigurationError):
            CLAM(small_config, storage=device, clock=SimulationClock())

    def test_stats_recorded(self, small_clam):
        for i in range(50):
            small_clam.insert(b"key-%d" % i, b"v")
        for i in range(50):
            small_clam.lookup(b"key-%d" % i)
        small_clam.lookup(b"missing")
        assert small_clam.stats.inserts == 50
        assert small_clam.stats.lookups == 51
        assert small_clam.stats.lookup_hits == 50
        assert 0 < small_clam.stats.mean_insert_latency_ms < 1.0
        assert small_clam.stats.mean_lookup_latency_ms > 0

    def test_describe_contains_key_metrics(self, small_clam):
        small_clam.insert(b"key", b"value")
        small_clam.lookup(b"key")
        summary = small_clam.describe()
        for field in ("lookups", "inserts", "mean_lookup_ms", "mean_insert_ms", "flushes"):
            assert field in summary

    def test_throughput_positive_after_operations(self, small_clam):
        for i in range(100):
            small_clam.insert(b"key-%d" % i, b"v")
        assert small_clam.throughput_ops_per_second() > 0

    def test_latency_samples_optional(self, small_config):
        clam = CLAM(small_config, storage="intel-ssd", keep_latency_samples=False)
        for i in range(20):
            clam.insert(b"key-%d" % i, b"v")
        assert clam.stats.insert_latencies_ms == []
        assert clam.stats.inserts == 20


class TestCLAMOnDifferentMedia:
    def test_clam_on_ssd_faster_than_on_disk(self, small_config):
        workload = [(b"key-%d" % i, b"value") for i in range(1500)]

        ssd_clam = CLAM(small_config, storage="intel-ssd")
        disk_clam = CLAM(small_config, storage="disk")
        for key, value in workload:
            ssd_clam.insert(key, value)
            disk_clam.insert(key, value)
        for key, _ in workload[::3]:
            ssd_clam.lookup(key)
            disk_clam.lookup(key)
        assert (
            ssd_clam.stats.mean_lookup_latency_ms < disk_clam.stats.mean_lookup_latency_ms
        )

    def test_intel_faster_than_transcend(self, small_config):
        intel = CLAM(small_config, storage="intel-ssd")
        transcend = CLAM(small_config, storage="transcend-ssd")
        for i in range(1500):
            intel.insert(b"key-%d" % i, b"v")
            transcend.insert(b"key-%d" % i, b"v")
        for i in range(0, 1500, 3):
            intel.lookup(b"key-%d" % i)
            transcend.lookup(b"key-%d" % i)
        assert intel.stats.mean_lookup_latency_ms <= transcend.stats.mean_lookup_latency_ms


class TestAblationModes:
    def test_unbuffered_mode_still_correct(self):
        config = CLAMConfig.scaled(use_buffering=False)
        clam = CLAM(config, storage="intel-ssd")
        clam.insert(b"key", b"value")
        assert clam.get(b"key") == b"value"
        clam.delete(b"key")
        assert clam.get(b"key") is None

    def test_unbuffered_inserts_much_slower_under_load(self, small_config):
        """The §7.3.1 buffering ablation: without buffering every insert is a
        random flash write and the SSD degrades."""
        buffered = CLAM(small_config, storage="intel-ssd")
        unbuffered = CLAM(small_config.with_overrides(use_buffering=False), storage="intel-ssd")
        for i in range(3000):
            buffered.insert(b"key-%d" % i, b"v")
            unbuffered.insert(b"key-%d" % i, b"v")
        assert (
            unbuffered.stats.mean_insert_latency_ms
            > 10 * buffered.stats.mean_insert_latency_ms
        )

    def test_no_bloom_filter_mode_reads_more(self, small_config):
        with_bloom = CLAM(small_config, storage="intel-ssd")
        without_bloom = CLAM(
            small_config.with_overrides(use_bloom_filters=False), storage="intel-ssd"
        )
        for i in range(600):
            with_bloom.insert(b"key-%d" % i, b"v")
            without_bloom.insert(b"key-%d" % i, b"v")
        for i in range(300):
            with_bloom.lookup(b"absent-%d" % i)
            without_bloom.lookup(b"absent-%d" % i)
        assert without_bloom.stats.flash_reads > with_bloom.stats.flash_reads
        assert (
            without_bloom.stats.mean_lookup_latency_ms
            > with_bloom.stats.mean_lookup_latency_ms
        )
