"""Tests for online elastic rebalancing (service.rebalance).

Covers the exact migration-arc computation, the KeyMigrator lifecycle for
scale-out and scale-in (including the atomic cut-over and copy retirement),
the double-read window's equivalence with a quiesced cluster (property
test), the kill-the-joining-shard drill at RF=2, abort semantics, the
membership freeze while a migration is in flight, the autoscale policy and
the TrafficSimulator's scale-out/scale-in schedule actions.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CLAMConfig
from repro.core.errors import ConfigurationError, ShardUnavailableError
from repro.core.hashing import RING_SEED, hash_key
from repro.service import (
    ArcState,
    AutoscaleConfig,
    AutoscalePolicy,
    ClusterService,
    FailureEvent,
    KeyMigrator,
    MigrationState,
    TrafficSimulator,
    TrafficSpec,
    changed_arcs,
)
from repro.service.router import ShardRouter
from repro.workloads import fingerprint_for

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def populated_cluster(num_shards=4, replication_factor=2, keys=250, **kwargs):
    kwargs.setdefault("virtual_nodes", 16)
    kwargs.setdefault("track_keys", True)
    cluster = ClusterService(
        num_shards=num_shards, replication_factor=replication_factor, **kwargs
    )
    inserted = [fingerprint_for(i, namespace=b"rebalance") for i in range(keys)]
    for key in inserted:
        cluster.insert(key, b"value-" + key[:6])
    return cluster, inserted


def telemetry_cluster(num_shards=3, **kwargs):
    return ClusterService(
        num_shards=num_shards,
        replication_factor=2,
        virtual_nodes=16,
        track_keys=True,
        config=CLAMConfig.scaled(telemetry_enabled=True),
        **kwargs,
    )


def event_kinds(cluster):
    return [event.kind for event in cluster.events.events()]


class TestChangedArcs:
    @pytest.mark.parametrize(
        "old_ids,new_ids",
        [
            ([f"s{i}" for i in range(4)], [f"s{i}" for i in range(5)]),
            ([f"s{i}" for i in range(5)], [f"s{i}" for i in range(5) if i != 2]),
        ],
        ids=["scale-out", "scale-in"],
    )
    def test_arcs_match_bruteforce_preference_diff(self, old_ids, new_ids):
        old = ShardRouter(old_ids, virtual_nodes=16)
        new = ShardRouter(new_ids, virtual_nodes=16)
        arcs = changed_arcs(old, new, 2)
        state = MigrationState(arcs, new, 2)
        for i in range(3_000):
            key = b"probe-%d" % i
            old_pref = old.preference_list(key, 2)
            new_pref = new.preference_list(key, 2)
            arc = state.arc_for_hash(hash_key(key, seed=RING_SEED))
            assert (old_pref != new_pref) == (arc is not None), key
            if arc is not None:
                assert arc.old_replicas == old_pref
                assert arc.new_replicas == new_pref

    def test_moved_fraction_matches_router_handoff(self):
        # At RF=1 a changed arc is exactly a changed owner, so the arc
        # fractions must reproduce the router's own exact handoff stats.
        old = ShardRouter([f"s{i}" for i in range(4)], virtual_nodes=16)
        new = ShardRouter([f"s{i}" for i in range(4)], virtual_nodes=16)
        handoff = new.add_shard("s4")
        arcs = changed_arcs(old, new, 1)
        assert sum(arc.fraction for arc in arcs) == pytest.approx(handoff.moved_fraction)

    def test_identical_rings_produce_no_arcs(self):
        router = ShardRouter(["a", "b", "c"], virtual_nodes=16)
        same = ShardRouter(["a", "b", "c"], virtual_nodes=16)
        assert changed_arcs(router, same, 2) == []

    def test_union_replicas_keeps_old_owners_first(self):
        old = ShardRouter(["a", "b", "c", "d"], virtual_nodes=16)
        new = ShardRouter(["a", "b", "c", "d", "e"], virtual_nodes=16)
        for arc in changed_arcs(old, new, 2):
            union = arc.union_replicas
            assert union[: len(arc.old_replicas)] == arc.old_replicas
            assert set(union) == set(arc.old_replicas) | set(arc.new_replicas)


class TestScaleOut:
    def test_scale_out_loses_nothing_and_retires_old_copies(self):
        cluster, inserted = populated_cluster()
        migrator = KeyMigrator(cluster, batch_size=40)
        joining = migrator.start_add()
        assert cluster.migration is not None
        steps = 0
        while cluster.migration is not None:
            migrator.step()
            # Live traffic mid-migration: reads and writes keep working.
            assert cluster.lookup(inserted[steps % len(inserted)]).found
            cluster.insert(fingerprint_for(steps, namespace=b"mid"), b"mid")
            steps += 1
        report = migrator.reports[-1]
        assert report.direction == "scale-out"
        assert report.subject == joining
        assert report.keys_copied > 0
        assert joining in cluster.shard_ids
        for key in inserted:
            assert cluster.lookup(key).found
        for i in range(steps):
            assert cluster.lookup(fingerprint_for(i, namespace=b"mid")).found
        # Retirement: every key's copies now live exactly on its preference
        # list — a shard pushed out of an arc's list no longer has them.
        for key in inserted[:50]:
            replicas = cluster.replicas_for(key)
            for shard_id in cluster.shard_ids:
                found = cluster._shard_op(shard_id, "lookup", key).found
                assert found == (shard_id in replicas), (key, shard_id)

    def test_migration_events_in_causal_order(self):
        cluster, _ = populated_cluster(keys=120)
        migrator = KeyMigrator(cluster, batch_size=50)
        migrator.start_add()
        migrator.run_to_completion()
        kinds = event_kinds(cluster)
        assert kinds.index("migration_started") < kinds.index("arc_cut_over")
        assert kinds.index("arc_cut_over") < kinds.index("migration_done")

    def test_membership_frozen_while_migrating(self):
        cluster, _ = populated_cluster(keys=60)
        migrator = KeyMigrator(cluster)
        migrator.start_add()
        with pytest.raises(ConfigurationError, match="frozen"):
            cluster.add_shard()
        with pytest.raises(ConfigurationError, match="frozen"):
            cluster.remove_shard("shard-0")
        with pytest.raises(ConfigurationError, match="already in flight"):
            migrator.start_add()
        migrator.run_to_completion()
        cluster.add_shard()  # membership thaws once the migration drains


class TestScaleIn:
    def test_scale_in_drains_then_decommissions(self):
        cluster, inserted = populated_cluster(num_shards=5)
        migrator = KeyMigrator(cluster, batch_size=40)
        migrator.start_remove("shard-1")
        # Off the ring immediately, but still instantiated (and serving as an
        # old owner) until its last arc cuts over.
        assert "shard-1" not in cluster.router
        assert "shard-1" in cluster.shards
        migrator.run_to_completion()
        assert "shard-1" not in cluster.shards
        for key in inserted:
            assert cluster.lookup(key).found

    def test_scale_in_refuses_to_violate_replication_factor(self):
        cluster, _ = populated_cluster(num_shards=2)
        migrator = KeyMigrator(cluster)
        with pytest.raises(ConfigurationError, match="replication_factor"):
            migrator.start_remove("shard-0")


class TestDoubleReadWindow:
    @given(
        partial_steps=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, **COMMON)
    def test_inflight_migration_reads_match_quiesced_cluster(self, partial_steps, seed):
        """Double-read during an in-flight arc == a cluster that never moved.

        Two identical clusters get identical data; one starts a scale-out and
        steps it only partially (arcs left in every state), with interleaved
        writes applied to both.  Every key must then read back identically —
        same found flag, same value — from the migrating cluster and the
        quiesced one.
        """
        keys = [fingerprint_for(i, namespace=b"prop-%d" % seed) for i in range(80)]
        moving = ClusterService(
            num_shards=3, replication_factor=2, virtual_nodes=8, track_keys=True
        )
        quiesced = ClusterService(
            num_shards=3, replication_factor=2, virtual_nodes=8, track_keys=True
        )
        for cluster in (moving, quiesced):
            for index, key in enumerate(keys):
                cluster.insert(key, b"v-%d" % index)
        migrator = KeyMigrator(moving, batch_size=10, max_active_arcs=2)
        migrator.start_add("joiner")
        for step in range(partial_steps):
            if moving.migration is not None:
                migrator.step()
            # Interleaved writes land on both clusters mid-window.
            update = keys[(seed + step) % len(keys)]
            moving.insert(update, b"updated-%d" % step)
            quiesced.insert(update, b"updated-%d" % step)
            deleted = keys[(seed + 3 * step + 1) % len(keys)]
            moving.delete(deleted)
            quiesced.delete(deleted)
        if moving.migration is not None:
            states = {arc.state for arc in moving.migration.arcs}
            assert states <= {ArcState.PENDING, ArcState.MIGRATING, ArcState.DONE}
        for key in keys:
            here = moving.lookup(key)
            there = quiesced.lookup(key)
            assert here.found == there.found, key
            assert here.value == there.value, key


class TestKillJoiningShard:
    def test_rf2_survives_joining_shard_crash_mid_migration(self):
        cluster, inserted = populated_cluster(failure_threshold=1)
        migrator = KeyMigrator(cluster, batch_size=30)
        joining = migrator.start_add()
        migrator.step()
        cluster.fail_shard(joining)
        cluster.record_shard_error(joining)
        assert joining in cluster.down_shard_ids
        # The migration still completes: surviving old owners that stay in
        # each arc's new preference list confirm every key; the dead joiner
        # accumulates hinted handoffs instead of blocking the cut-over.
        report = migrator.run_to_completion()
        assert report.direction == "scale-out"
        backlog = len(cluster._hints.get(joining, ()))
        assert backlog > 0
        for key in inserted:
            assert cluster.lookup(key).found
        # Healing replays the backlog; the joiner converges.
        replayed_before = cluster.hinted_handoffs
        cluster.heal_shard(joining)
        assert cluster.hinted_handoffs - replayed_before > 0
        for key in inserted:
            assert cluster.lookup(key).found

    def test_rf1_migration_stalls_instead_of_losing_keys(self):
        cluster, _ = populated_cluster(
            num_shards=3, replication_factor=1, failure_threshold=1
        )
        migrator = KeyMigrator(cluster, batch_size=30, stall_limit=2)
        joining = migrator.start_add()
        cluster.fail_shard(joining)
        cluster.record_shard_error(joining)
        # With no replica to confirm on, draining must refuse to cut over.
        with pytest.raises(ShardUnavailableError, match="stalled"):
            migrator.run_to_completion()


class TestAbort:
    def test_abort_restores_old_ring_and_scrubs_copies(self):
        cluster, inserted = populated_cluster()
        before = cluster.shard_ids
        migrator = KeyMigrator(cluster, batch_size=1, max_active_arcs=1)
        joining = migrator.start_add()
        # Copy a few keys without letting any arc drain: an arc only cuts
        # over when its queue empties, so stop while the active arc still
        # has more than one pending key.
        state = cluster.migration
        for _ in range(3):
            active = next(arc for arc in state.arcs if arc.state is not ArcState.DONE)
            if len(active.pending) <= 1:
                break
            migrator.step()
        assert not any(arc.state is ArcState.DONE for arc in state.arcs)
        migrator.abort()
        assert cluster.migration is None
        assert cluster.shard_ids == before
        assert joining not in cluster.shards
        for key in inserted:
            assert cluster.lookup(key).found
        assert "migration_aborted" in event_kinds(cluster)
        # Fully aborted: direct membership changes work again.
        cluster.add_shard()

    def test_abort_after_cut_over_is_refused(self):
        cluster, _ = populated_cluster()
        migrator = KeyMigrator(cluster, batch_size=1, max_active_arcs=1)
        migrator.start_add()
        state = cluster.migration
        while cluster.migration is not None and not any(
            arc.state is ArcState.DONE for arc in state.arcs
        ):
            migrator.step()
        assert cluster.migration is not None, "first arc should not be the only arc"
        with pytest.raises(ConfigurationError, match="cut over"):
            migrator.abort()
        migrator.run_to_completion()


class TestAutoscale:
    def test_policy_requires_telemetry(self):
        cluster, _ = populated_cluster(keys=10)
        with pytest.raises(ConfigurationError, match="telemetry"):
            AutoscalePolicy(cluster, KeyMigrator(cluster))

    def test_scale_out_on_hot_shard(self):
        cluster = telemetry_cluster()
        migrator = KeyMigrator(cluster, batch_size=64)
        policy = AutoscalePolicy(
            cluster,
            migrator,
            AutoscaleConfig(evaluate_every=1, cooldown=0, hot_shard_threshold=1.01),
        )
        hot = fingerprint_for(0, namespace=b"hot")
        cluster.insert(hot, b"hot-value")
        for _ in range(50):
            cluster.lookup(hot)
        decision = policy.tick(1)
        assert decision is not None and decision.action == "scale-out"
        assert cluster.migration is not None
        migrator.run_to_completion()
        assert event_kinds(cluster).count("autoscale_decision") == 1

    def test_cooldown_and_inflight_migration_suppress_decisions(self):
        cluster = telemetry_cluster()
        migrator = KeyMigrator(cluster, batch_size=4)
        policy = AutoscalePolicy(
            cluster,
            migrator,
            AutoscaleConfig(evaluate_every=1, cooldown=100, hot_shard_threshold=1.01),
        )
        hot = fingerprint_for(0, namespace=b"hot")
        cluster.insert(hot, b"hot-value")

        def hammer():
            for _ in range(50):
                cluster.lookup(hot)

        hammer()
        assert policy.tick(1) is not None
        hammer()
        assert policy.tick(2) is None  # migration still in flight
        migrator.run_to_completion()
        hammer()
        assert policy.tick(3) is None  # cooldown
        hammer()
        assert policy.tick(150) is not None  # cooldown elapsed

    def test_scale_in_picks_coldest_shard_when_balanced(self):
        cluster = telemetry_cluster(num_shards=5)
        migrator = KeyMigrator(cluster, batch_size=64)
        policy = AutoscalePolicy(
            cluster,
            migrator,
            AutoscaleConfig(
                evaluate_every=1,
                cooldown=0,
                min_shards=2,
                hot_shard_threshold=10.0,  # nothing counts as hot
                scale_in_imbalance=100.0,
            ),
        )
        for i in range(200):
            cluster.insert(fingerprint_for(i, namespace=b"even"), b"v")
        decision = policy.tick(1)
        assert decision is not None and decision.action == "scale-in"
        migrator.run_to_completion()
        assert len(cluster.shard_ids) == 4


class TestSimulatorIntegration:
    def test_schedule_scale_events_validate_shard_id(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(at_request=0, action="scale-in")
        FailureEvent(at_request=0, action="scale-out")  # shard_id optional

    def test_scripted_churn_under_live_traffic(self):
        cluster, inserted = populated_cluster()
        simulator = TrafficSimulator(
            cluster,
            TrafficSpec(
                num_clients=4, requests_per_client=30, batch_size=4, key_space=400, seed=9
            ),
            schedule=[
                FailureEvent(at_request=20, action="scale-out"),
                FailureEvent(at_request=70, action="scale-in", shard_id="shard-1"),
            ],
        )
        report = simulator.run()
        assert report.availability == 1.0
        assert len(report.migrations) == 2
        assert [m.direction for m in report.migrations] == ["scale-out", "scale-in"]
        assert "shard-1" not in cluster.shard_ids
        for key in inserted:
            assert cluster.lookup(key).found

    def test_autoscaler_shares_the_simulators_migrator(self):
        cluster = telemetry_cluster()
        policy = AutoscalePolicy(cluster, KeyMigrator(cluster))
        simulator = TrafficSimulator(cluster, autoscaler=policy)
        assert simulator.migrator is policy.migrator
        with pytest.raises(ConfigurationError, match="share"):
            TrafficSimulator(cluster, migrator=KeyMigrator(cluster), autoscaler=policy)
