"""Tests for the WAN optimizer's connection-management front end."""

import random

import pytest

from repro.core import CLAM, CLAMConfig
from repro.flashsim import SSD, SimulationClock
from repro.wanopt import CompressionEngine, ConnectionManager


class TestConnectionManager:
    def test_object_emitted_after_window_expires(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=25.0)
        manager.receive("conn-1", b"hello world " * 100)
        assert manager.open_connections == 1
        clock.advance(30.0)
        objects = manager.poll()
        assert len(objects) == 1
        assert objects[0].size_bytes == len(b"hello world " * 100)
        assert manager.open_connections == 0

    def test_segments_of_one_connection_are_concatenated(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=25.0)
        manager.receive("conn-1", b"first-")
        manager.receive("conn-1", b"second")
        clock.advance(30.0)
        (obj,) = manager.poll()
        payload = b"".join(chunk.payload for chunk in obj.chunks)
        assert payload == b"first-second"

    def test_connections_are_kept_separate(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=25.0)
        manager.receive("a", b"AAAA" * 50)
        manager.receive("b", b"BBBB" * 70)
        clock.advance(30.0)
        objects = manager.poll()
        assert len(objects) == 2
        sizes = sorted(obj.size_bytes for obj in objects)
        assert sizes == [200, 280]

    def test_size_cap_emits_early(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=1_000.0, max_object_bytes=4_096)
        completed = manager.receive("bulk", bytes(8_192))
        assert len(completed) == 1
        assert completed[0].size_bytes == 8_192

    def test_window_not_expired_means_no_emission(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=25.0)
        manager.receive("conn-1", b"data")
        clock.advance(5.0)
        assert manager.poll() == []
        assert manager.pending_bytes("conn-1") == 4

    def test_flush_specific_and_all(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=1_000.0)
        manager.receive("a", b"x" * 100)
        manager.receive("b", b"y" * 100)
        assert len(manager.flush("a")) == 1
        assert manager.flush("missing") == []
        assert len(manager.flush()) == 1  # only "b" remains
        assert manager.open_connections == 0

    def test_chunking_cost_advances_clock(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=1.0, chunking_cost_ms_per_kb=0.1)
        manager.receive("conn", bytes(10 * 1024))
        clock.advance(2.0)
        before = clock.now_ms
        manager.poll()
        assert clock.now_ms > before

    def test_chunks_reassemble_to_payload(self):
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=1.0)
        payload = random.Random(3).randbytes(64 * 1024)
        manager.receive("conn", payload)
        clock.advance(2.0)
        (obj,) = manager.poll()
        assert b"".join(chunk.payload for chunk in obj.chunks) == payload

    def test_invalid_configuration_rejected(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            ConnectionManager(clock, window_ms=0)
        with pytest.raises(ValueError):
            ConnectionManager(clock, max_object_bytes=0)

    def test_end_to_end_with_compression_engine(self):
        """CM-produced objects flow straight into the compression engine, and a
        repeated transfer of the same bytes deduplicates."""
        clock = SimulationClock()
        manager = ConnectionManager(clock, window_ms=10.0)
        clam = CLAM(CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64), storage=SSD(clock=clock))
        engine = CompressionEngine(index=clam)

        payload = random.Random(5).randbytes(32 * 1024)
        manager.receive("transfer-1", payload)
        clock.advance(15.0)
        first_results = [engine.process_object(obj) for obj in manager.poll()]
        manager.receive("transfer-2", payload)
        clock.advance(15.0)
        second_results = [engine.process_object(obj) for obj in manager.poll()]

        first_compressed = sum(result.compressed_bytes for result in first_results)
        second_compressed = sum(result.compressed_bytes for result in second_results)
        assert second_compressed < first_compressed / 5
