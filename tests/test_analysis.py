"""Tests for the §6 analytical cost model, tuning and cost-efficiency analysis."""


import pytest

from repro.analysis import (
    FLASH_CHIP_COSTS,
    INTEL_SSD_COSTS,
    PAPER_PRICING,
    amortized_insert_cost_ms,
    bloom_false_positive_probability,
    cost_efficiency_table,
    expected_lookup_io_cost_ms,
    required_bloom_bits,
    recommended_super_tables,
    tune,
    worst_case_insert_cost_ms,
)
from repro.analysis.cost_model import (
    lookup_cost_vs_buffer_split,
    optimal_buffer_bytes_analytical,
    sweep_insert_cost,
    sweep_lookup_overhead,
)
from repro.analysis.cost_efficiency import (
    improvement_factor,
    ops_per_second_from_latency,
)

GB = 1024**3
MB = 1024**2
KB = 1024


class TestInsertCostModel:
    def test_amortized_cost_decreases_with_buffer_size(self):
        small = amortized_insert_cost_ms(INTEL_SSD_COSTS, 4 * KB)
        large = amortized_insert_cost_ms(INTEL_SSD_COSTS, 256 * KB)
        assert large < small

    def test_worst_case_cost_increases_with_buffer_size(self):
        small = worst_case_insert_cost_ms(INTEL_SSD_COSTS, 4 * KB)
        large = worst_case_insert_cost_ms(INTEL_SSD_COSTS, 1024 * KB)
        assert large > small

    def test_flash_chip_block_size_is_the_knee(self):
        """Figure 4(a): on a raw chip the amortised cost drops sharply up to the
        flash block size and is essentially flat beyond it — the block size is
        the operating point the paper recommends."""
        block = FLASH_CHIP_COSTS.block_size
        at_block = amortized_insert_cost_ms(FLASH_CHIP_COSTS, block)
        much_smaller = amortized_insert_cost_ms(FLASH_CHIP_COSTS, block // 16)
        much_larger = amortized_insert_cost_ms(FLASH_CHIP_COSTS, block * 16)
        # Sub-block buffers pay heavily for copying and partial erases.
        assert much_smaller > at_block * 2
        # Beyond the block size there is almost nothing left to gain.
        assert much_larger > at_block * 0.85

    def test_amortized_cost_magnitude_matches_paper(self):
        """With a 128 KB buffer and 16-byte entries, the amortised insert cost on
        an SSD should be well under 0.01 ms (the paper measures 0.006-0.007 ms
        including DRAM work)."""
        cost = amortized_insert_cost_ms(INTEL_SSD_COSTS, 128 * KB, entry_size_bytes=16)
        assert cost < 0.01

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            amortized_insert_cost_ms(INTEL_SSD_COSTS, 0)
        with pytest.raises(ValueError):
            worst_case_insert_cost_ms(INTEL_SSD_COSTS, -5)

    def test_sweep_rows(self):
        rows = sweep_insert_cost(INTEL_SSD_COSTS, [4 * KB, 128 * KB])
        assert len(rows) == 2
        assert set(rows[0]) == {"buffer_bytes", "amortized_ms", "worst_case_ms"}


class TestLookupCostModel:
    def test_false_positive_probability_falls_with_bloom_size(self):
        small = bloom_false_positive_probability(32 * GB, 2 * GB, 128 * MB, 32)
        large = bloom_false_positive_probability(32 * GB, 2 * GB, 1 * GB, 32)
        assert large < small

    def test_expected_io_overhead_falls_with_bloom_size(self):
        """Figure 3's qualitative shape: more Bloom memory, less spurious I/O,
        with diminishing returns."""
        sizes = [64 * MB, 256 * MB, 1 * GB, 4 * GB]
        overheads = [
            expected_lookup_io_cost_ms(INTEL_SSD_COSTS, 32 * GB, 2 * GB, size, 32)
            for size in sizes
        ]
        assert all(a > b for a, b in zip(overheads, overheads[1:]))

    def test_one_gb_of_bloom_filters_suffices_for_32gb_flash(self):
        """The paper's worked example (§6.4): with 32 GB flash and 32-byte
        effective entries, ~1 GB of Bloom filters keeps expected I/O overhead
        below 1 ms."""
        overhead = expected_lookup_io_cost_ms(INTEL_SSD_COSTS, 32 * GB, 2 * GB, 1 * GB, 32)
        assert overhead < 1.0

    def test_larger_flash_needs_more_bloom_memory(self):
        overhead_32 = expected_lookup_io_cost_ms(INTEL_SSD_COSTS, 32 * GB, 2 * GB, 256 * MB, 32)
        overhead_64 = expected_lookup_io_cost_ms(INTEL_SSD_COSTS, 64 * GB, 2 * GB, 256 * MB, 32)
        assert overhead_64 > overhead_32

    def test_optimal_buffer_size_matches_paper_worked_example(self):
        """§7.1.1: with 32 GB of flash and 32-byte effective entries the optimal
        total buffer allocation is ~266 MB (the paper measures the empirical
        optimum at 256 MB)."""
        optimal = optimal_buffer_bytes_analytical(32 * GB, 32)
        assert 230 * MB < optimal < 300 * MB

    def test_lookup_cost_minimised_near_analytical_optimum(self):
        """§6.4: scanning the buffer/Bloom split, the minimum should sit near
        B_opt = F/(s ln²2) — the empirical counterpart is Figure 5."""
        flash = 32 * GB
        memory = 4 * GB
        entry = 32
        optimum = optimal_buffer_bytes_analytical(flash, entry)
        candidates = [
            optimum / 8,
            optimum / 2,
            optimum,
            (optimum + memory) / 2,
            memory * 0.95,
        ]
        costs = [
            lookup_cost_vs_buffer_split(INTEL_SSD_COSTS, flash, memory, size, entry)
            for size in candidates
        ]
        assert costs.index(min(costs)) == 2

    def test_sweep_lookup_overhead_rows(self):
        rows = sweep_lookup_overhead(INTEL_SSD_COSTS, 32 * GB, [128 * MB, 1 * GB])
        assert len(rows) == 2
        assert rows[0]["expected_io_overhead_ms"] > rows[1]["expected_io_overhead_ms"]

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            lookup_cost_vs_buffer_split(INTEL_SSD_COSTS, 32 * GB, 4 * GB, 5 * GB, 32)


class TestTuning:
    def test_required_bloom_bits_decrease_with_looser_target(self):
        strict = required_bloom_bits(INTEL_SSD_COSTS, 32 * GB, 0.01, 32)
        loose = required_bloom_bits(INTEL_SSD_COSTS, 32 * GB, 1.0, 32)
        assert loose < strict

    def test_required_bloom_bits_zero_when_target_trivially_met(self):
        assert required_bloom_bits(INTEL_SSD_COSTS, 32 * GB, 10_000.0, 32) == 0.0

    def test_recommended_super_tables_chip_uses_block_size(self):
        tables = recommended_super_tables(2 * GB, FLASH_CHIP_COSTS)
        assert tables == pytest.approx(2 * GB / FLASH_CHIP_COSTS.block_size, rel=0.01)

    def test_recommended_super_tables_respects_latency_budget(self):
        generous = recommended_super_tables(2 * GB, INTEL_SSD_COSTS, max_worst_case_ms=100.0)
        strict = recommended_super_tables(2 * GB, INTEL_SSD_COSTS, max_worst_case_ms=1.0)
        assert strict > generous  # smaller buffers -> more super tables

    def test_tune_produces_consistent_report(self):
        report = tune(INTEL_SSD_COSTS, flash_bytes=32 * GB, memory_bytes=4 * GB, entry_size_bytes=16)
        assert report.buffer_total_bytes + report.bloom_total_bytes == pytest.approx(4 * GB)
        assert report.num_super_tables >= 1
        assert report.incarnations_per_table > 1
        assert report.amortized_insert_ms < report.worst_case_insert_ms
        assert set(report.as_dict()) >= {"num_super_tables", "expected_lookup_io_ms"}

    def test_tune_rejects_invalid_budget(self):
        with pytest.raises(ValueError):
            tune(INTEL_SSD_COSTS, flash_bytes=0, memory_bytes=4 * GB)


class TestCostEfficiency:
    def test_ops_per_second_from_latency(self):
        assert ops_per_second_from_latency(1.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            ops_per_second_from_latency(0.0)

    def test_clam_beats_dram_ssd_by_orders_of_magnitude(self):
        """The paper's headline: 1-2 orders of magnitude more ops/s/$ than a
        RamSan DRAM-SSD."""
        entries = cost_efficiency_table(
            measured_latencies_ms={"clam-intel": 0.06, "disk-bdb": 7.0},
            fixed_ops_per_second={"ramsan-dram-ssd": 300_000},
        )
        by_platform = {entry.platform: entry for entry in entries}
        clam = by_platform[PAPER_PRICING["clam-intel"].name]
        ramsan = by_platform[PAPER_PRICING["ramsan-dram-ssd"].name]
        ratio = clam.ops_per_second_per_dollar / ramsan.ops_per_second_per_dollar
        assert ratio > 10

    def test_entries_sorted_by_efficiency(self):
        entries = cost_efficiency_table(
            measured_latencies_ms={"clam-intel": 0.06, "disk-bdb": 7.0},
        )
        efficiencies = [entry.ops_per_second_per_dollar for entry in entries]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            cost_efficiency_table(measured_latencies_ms={"nonexistent": 1.0})

    def test_improvement_factor(self):
        entries = cost_efficiency_table(
            measured_latencies_ms={"clam-intel": 0.06},
            fixed_ops_per_second={"ramsan-dram-ssd": 300_000},
        )
        factor = improvement_factor(
            entries,
            better=PAPER_PRICING["clam-intel"].name,
            worse=PAPER_PRICING["ramsan-dram-ssd"].name,
        )
        assert factor > 1
