"""Tests for device geometry and the shared StorageDevice behaviour."""

import pytest

from repro.flashsim import DeviceGeometry, IOKind, SSD, SimulationClock


class TestDeviceGeometry:
    def test_derived_sizes(self):
        geometry = DeviceGeometry(page_size=512, pages_per_block=4, num_blocks=10)
        assert geometry.block_size == 2048
        assert geometry.total_pages == 40
        assert geometry.capacity_bytes == 512 * 40

    @pytest.mark.parametrize("field", ["page_size", "pages_per_block", "num_blocks"])
    def test_non_positive_rejected(self, field):
        kwargs = {"page_size": 512, "pages_per_block": 4, "num_blocks": 10}
        kwargs[field] = 0
        with pytest.raises(ValueError):
            DeviceGeometry(**kwargs)


class TestStorageDeviceBehaviour:
    def test_write_then_read_round_trip(self, intel_ssd):
        intel_ssd.write_page(3, b"payload")
        data, _latency = intel_ssd.read_page(3)
        assert data == b"payload"

    def test_unwritten_page_reads_empty(self, intel_ssd):
        data, _latency = intel_ssd.read_page(5)
        assert data == b""

    def test_out_of_range_page_rejected(self, intel_ssd):
        with pytest.raises(IndexError):
            intel_ssd.read_page(intel_ssd.geometry.total_pages)
        with pytest.raises(IndexError):
            intel_ssd.write_page(-1, b"")

    def test_oversized_payload_rejected(self, intel_ssd):
        too_big = b"x" * (intel_ssd.geometry.page_size + 1)
        with pytest.raises(ValueError):
            intel_ssd.write_page(0, too_big)

    def test_io_advances_clock(self, intel_ssd, clock):
        before = clock.now_ms
        intel_ssd.write_page(0, b"a")
        assert clock.now_ms > before

    def test_io_recorded_in_stats(self, intel_ssd):
        intel_ssd.write_page(0, b"a")
        intel_ssd.read_page(0)
        assert intel_ssd.stats.count(IOKind.WRITE) == 1
        assert intel_ssd.stats.count(IOKind.READ) == 1

    def test_write_range_round_trip(self, intel_ssd):
        pages = [b"one", b"two", b"three"]
        intel_ssd.write_range(10, pages)
        data, _latency = intel_ssd.read_range(10, 3)
        assert data == pages

    def test_write_range_empty_rejected(self, intel_ssd):
        with pytest.raises(ValueError):
            intel_ssd.write_range(0, [])

    def test_read_range_bounds_checked(self, intel_ssd):
        with pytest.raises(IndexError):
            intel_ssd.read_range(intel_ssd.geometry.total_pages - 1, 2)

    def test_range_write_cheaper_than_individual_writes(self):
        """Streaming a batch must cost less than writing each page alone (P3)."""
        clock_a, clock_b = SimulationClock(), SimulationClock()
        ssd_a, ssd_b = SSD(clock=clock_a), SSD(clock=clock_b)
        pages = [b"x" * 512 for _ in range(32)]
        batched = ssd_a.write_range(0, pages)
        individual = sum(ssd_b.write_page(100 + 2 * i, p) for i, p in enumerate(pages))
        assert batched < individual

    def test_sequential_reads_detected(self, intel_ssd):
        intel_ssd.write_range(0, [b"a", b"b", b"c"])
        intel_ssd.read_page(0)
        _data, latency_seq = intel_ssd.read_page(1)
        # A random far-away read has the full fixed cost.
        _data, latency_rand = intel_ssd.read_page(500)
        assert latency_seq < latency_rand
