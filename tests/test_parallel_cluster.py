"""Tests for the process-per-shard cluster (repro.service.parallel).

The two contracts under test:

* **Bit-identical results** — the parallel deployment must produce exactly
  the result records, merged counters and ensemble clock readings of the
  in-process :class:`ClusterService` on the same operation stream.
* **Worker death is a device failure** — killing a worker behaves like a
  crash-stopped device: typed errors, replica failover, hinted handoff,
  supervisor detection, restart with crash recovery, and zero lost
  acknowledged writes at ``replication_factor >= 2``.
"""

import pytest

from repro.core import CLAMConfig
from repro.core.errors import (
    ClusterCloseError,
    ConfigurationError,
    DeviceFailedError,
    ShardUnavailableError,
    WorkerDiedError,
)
from repro.service import ClusterService, ParallelClusterService
from repro.telemetry.schema import validate_snapshot
from repro.workloads.workload import Operation, OpKind


@pytest.fixture
def cluster_config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
    )


@pytest.fixture
def telemetry_config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=4,
        buffer_capacity_items=32,
        incarnations_per_table=4,
        telemetry_enabled=True,
    )


def drive_mixed(cluster):
    """A deterministic mixed workload: single ops and batches, all op kinds."""
    records = []
    records.append(cluster.insert(b"single-1", b"value-1"))
    records.append(cluster.insert(b"single-2", b"value-2"))
    records.append(cluster.lookup(b"single-1"))
    records.append(cluster.lookup(b"never-written"))
    inserts = [
        Operation(OpKind.INSERT, b"key-%d" % i, b"val-%d" % i) for i in range(160)
    ]
    records.extend(cluster.execute_batch(inserts).results)
    mixed = []
    for i in range(160):
        if i % 3 == 0:
            mixed.append(Operation(OpKind.LOOKUP, b"key-%d" % i))
        elif i % 3 == 1:
            mixed.append(Operation(OpKind.UPDATE, b"key-%d" % i, b"new-%d" % i))
        else:
            mixed.append(Operation(OpKind.DELETE, b"key-%d" % i))
    batch = cluster.execute_batch(mixed)
    records.extend(batch.results)
    records.append(cluster.delete(b"single-2"))
    records.append(cluster.lookup(b"single-2"))
    return records, batch


class TestBitIdenticalParity:
    """Process mode must reproduce the in-process cluster's exact outputs."""

    @pytest.mark.parametrize("replication_factor", [1, 2])
    def test_results_counters_and_clocks_match(self, cluster_config, replication_factor):
        reference = ClusterService(
            num_shards=4, config=cluster_config, replication_factor=replication_factor
        )
        expected, expected_batch = drive_mixed(reference)

        with ParallelClusterService(
            num_shards=4, config=cluster_config, replication_factor=replication_factor
        ) as parallel:
            actual, actual_batch = drive_mixed(parallel)
            assert len(actual) == len(expected)
            for position, (got, want) in enumerate(zip(actual, expected)):
                assert got == want, f"record {position} diverged: {got!r} != {want!r}"
            # Merged counters cover latency totals, flash I/O, flush counts …
            assert parallel.stats.combined() == reference.stats.combined()
            # … and the simulated time bases agree to the bit.
            assert parallel.clock.now_ms == reference.clock.now_ms
            assert actual_batch.makespan_ms == expected_batch.makespan_ms
            assert actual_batch.busy_ms == expected_batch.busy_ms
            assert actual_batch.dispatch_ms == expected_batch.dispatch_ms

    def test_hash_once_digests_cross_the_wire(self, cluster_config):
        """Routing digests are serialised with the key, not recomputed."""
        with ParallelClusterService(num_shards=4, config=cluster_config) as parallel:
            reference = ClusterService(num_shards=4, config=cluster_config)
            keys = [b"fp-%d" % i for i in range(64)]
            parallel.insert_batch([(k, b"v") for k in keys])
            reference.insert_batch([(k, b"v") for k in keys])
            assert [r.found for r in parallel.lookup_batch(keys)] == [
                r.found for r in reference.lookup_batch(keys)
            ]
            assert parallel.stats.combined() == reference.stats.combined()


class TestWorkerFailure:
    def test_dead_worker_raises_worker_died_on_next_frame(self, cluster_config):
        with ParallelClusterService(num_shards=2, config=cluster_config) as cluster:
            shard_id = cluster.shard_for(b"key")
            shard = cluster.shards[shard_id]
            cluster.kill_worker(shard_id)
            assert not shard.alive
            with pytest.raises(WorkerDiedError):
                shard.lookup(b"key")
            # WorkerDiedError *is* a DeviceFailedError: the whole failure
            # machinery treats it like a crashed device.
            assert issubclass(WorkerDiedError, DeviceFailedError)

    def test_kill_at_rf2_loses_no_acknowledged_write(self, cluster_config):
        with ParallelClusterService(
            num_shards=4, config=cluster_config, replication_factor=2
        ) as cluster:
            keys = [b"key-%d" % i for i in range(240)]
            for key in keys:
                cluster.insert(key, b"val-" + key)
            victim = cluster.shard_for(keys[0])
            cluster.kill_worker(victim)
            batch = cluster.execute_batch(
                [Operation(OpKind.LOOKUP, key) for key in keys]
            )
            assert all(r is not None and r.found for r in batch.results)
            assert victim in batch.failed_shards
            assert batch.retried_operations > 0
            assert victim in cluster.down_shard_ids

    def test_kill_at_rf1_raises_typed_shard_unavailable(self, cluster_config):
        with ParallelClusterService(num_shards=2, config=cluster_config) as cluster:
            cluster.insert(b"key", b"value")
            victim = cluster.shard_for(b"key")
            cluster.kill_worker(victim)
            # First frame marks the error; with failure_threshold=1 the shard
            # goes down, so no live replica remains for its keys.
            with pytest.raises((ShardUnavailableError, DeviceFailedError)):
                cluster.lookup(b"key")
            with pytest.raises(ShardUnavailableError):
                cluster.lookup(b"key")

    def test_supervisor_detects_death_without_traffic(self, cluster_config):
        with ParallelClusterService(
            num_shards=3, config=cluster_config, replication_factor=2
        ) as cluster:
            cluster.insert(b"key", b"value")
            victim = cluster.shard_for(b"key")
            assert cluster.check_workers() == []
            cluster.kill_worker(victim)
            assert cluster.check_workers() == [victim]
            assert victim in cluster.down_shard_ids
            # Routing now avoids the dead worker; the key still serves.
            assert cluster.lookup(b"key").found
            kinds = [event.kind for event in cluster.events]
            assert "worker_killed" in kinds and "worker_died" in kinds
            assert cluster.check_workers() == []  # already marked down

    def test_restart_rejoins_and_replays_hints(self, cluster_config):
        with ParallelClusterService(
            num_shards=3, config=cluster_config, replication_factor=2
        ) as cluster:
            keys = [b"key-%d" % i for i in range(120)]
            for key in keys:
                cluster.insert(key, b"old-" + key)
            victim = cluster.shard_for(keys[0])
            cluster.kill_worker(victim)
            cluster.check_workers()
            # Writes issued while the worker is down must reach it on restart
            # via hinted handoff (a volatile worker comes back empty).
            missed = [key for key in keys if victim in cluster.replicas_for(key)]
            assert missed, "victim should replicate some keys"
            for key in missed:
                cluster.insert(key, b"new-" + key)
            report = cluster.restart_worker(victim)
            assert report is None  # volatile storage: no crash recovery
            assert victim not in cluster.down_shard_ids
            assert cluster.shards[victim].alive
            assert cluster.hinted_handoffs >= len(missed)
            # The replacement answers with the post-crash values directly.
            replacement = cluster.shards[victim]
            for key in missed:
                result = replacement.lookup(key)
                assert result.found and result.value == b"new-" + key
            kinds = [event.kind for event in cluster.events]
            assert "worker_restarted" in kinds and "hinted_handoff_replay" in kinds

    def test_injected_device_fault_crosses_the_wire(self, cluster_config):
        """fail_shard/heal_shard relay fault injection into the worker."""
        with ParallelClusterService(
            num_shards=3, config=cluster_config, replication_factor=2
        ) as cluster:
            cluster.insert(b"key", b"value")
            victim = cluster.shard_for(b"key")
            cluster.fail_shard(victim, mode="crash")
            assert cluster.shards[victim].alive  # process lives; device is dead
            assert cluster.lookup(b"key").found  # served by the other replica
            assert victim in cluster.down_shard_ids
            cluster.heal_shard(victim)
            assert victim not in cluster.down_shard_ids
            assert cluster.lookup(b"key").found

    def test_unknown_fault_mode_rejected_across_the_wire(self, cluster_config):
        with ParallelClusterService(num_shards=2, config=cluster_config) as cluster:
            with pytest.raises(ConfigurationError, match="unknown fault mode"):
                cluster.fail_shard("shard-0", mode="meteor-strike")

    def test_worker_build_failure_surfaces_as_configuration_error(self, cluster_config):
        with pytest.raises(ConfigurationError, match="failed to start"):
            ParallelClusterService(
                num_shards=2, config=cluster_config, storage="no-such-profile"
            )

    def test_spawn_start_method_rejected(self, cluster_config):
        with pytest.raises(ConfigurationError, match="fork"):
            ParallelClusterService(
                num_shards=2, config=cluster_config, start_method="spawn"
            )


class TestPersistentWorkers:
    def test_clean_close_and_reopen(self, cluster_config, tmp_path):
        data_dir = str(tmp_path / "cluster")
        with ParallelClusterService(
            num_shards=2,
            config=cluster_config,
            storage="persistent",
            data_dir=data_dir,
            replication_factor=2,
        ) as cluster:
            for i in range(80):
                cluster.insert(b"pkey-%d" % i, b"pval-%d" % i)
        with ParallelClusterService(
            num_shards=2,
            config=cluster_config,
            storage="persistent",
            data_dir=data_dir,
            replication_factor=2,
        ) as reopened:
            for i in range(80):
                result = reopened.lookup(b"pkey-%d" % i)
                assert result.found and result.value == b"pval-%d" % i

    def test_sigkill_runs_crash_recovery_on_restart(self, cluster_config, tmp_path):
        data_dir = str(tmp_path / "cluster")
        with ParallelClusterService(
            num_shards=2,
            config=cluster_config,
            storage="persistent",
            data_dir=data_dir,
            replication_factor=2,
        ) as cluster:
            keys = [b"pkey-%d" % i for i in range(200)]
            for key in keys:
                cluster.insert(key, b"payload-" + key)
            victim = cluster.shard_for(keys[0])
            cluster.kill_worker(victim)  # SIGKILL: no flush, no checkpoint
            report = cluster.restart_worker(victim)
            assert report is not None and not report.clean_shutdown
            assert report.pages_scanned > 0
            # RF=2: anything the dead worker's DRAM buffer lost is read-
            # repaired or hint-replayed from the surviving replica.
            for key in keys:
                result = cluster.lookup(key)
                assert result.found and result.value == b"payload-" + key


class TestTelemetryAndLifecycle:
    def test_snapshot_merges_worker_registries_and_validates(self, telemetry_config):
        reference = ClusterService(num_shards=3, config=telemetry_config)
        with ParallelClusterService(num_shards=3, config=telemetry_config) as cluster:
            for target in (reference, cluster):
                for i in range(90):
                    target.insert(b"key-%d" % i, b"val")
                for i in range(90):
                    target.lookup(b"key-%d" % i)
            snapshot = cluster.telemetry_snapshot()
            validate_snapshot(snapshot)
            assert sorted(snapshot["per_shard"]) == ["shard-0", "shard-1", "shard-2"]
            # Worker registries cross the wire losslessly: the merged view is
            # bit-identical to the in-process cluster's.
            expected = reference.telemetry_snapshot()
            assert snapshot["per_shard"] == expected["per_shard"]
            assert snapshot["registry"] == expected["registry"]

    def test_snapshot_skips_dead_workers(self, telemetry_config):
        with ParallelClusterService(
            num_shards=3, config=telemetry_config, replication_factor=2
        ) as cluster:
            cluster.insert(b"key", b"value")
            cluster.kill_worker("shard-1")
            snapshot = cluster.telemetry_snapshot()
            validate_snapshot(snapshot)
            assert "shard-1" not in snapshot["per_shard"]

    def test_close_is_idempotent(self, cluster_config):
        cluster = ParallelClusterService(num_shards=2, config=cluster_config)
        cluster.insert(b"key", b"value")
        cluster.close()
        cluster.close()
        for shard in cluster.shards.values():
            assert not shard.alive
            assert shard.process.exitcode == 0

    def test_close_reaps_killed_workers(self, cluster_config):
        cluster = ParallelClusterService(
            num_shards=3, config=cluster_config, replication_factor=2
        )
        cluster.kill_worker("shard-0")
        cluster.close()  # must not raise: dead workers are just reaped
        for shard in cluster.shards.values():
            assert not shard.process.is_alive()

    def test_remove_shard_shuts_worker_down(self, cluster_config):
        with ParallelClusterService(
            num_shards=3, config=cluster_config
        ) as cluster:
            shard = cluster.shards["shard-2"]
            cluster.remove_shard("shard-2")
            assert "shard-2" not in cluster.shards
            assert not shard.process.is_alive()
            assert shard.process.exitcode == 0
            # The survivors keep serving.
            cluster.insert(b"key", b"value")
            assert cluster.lookup(b"key").found

    def test_add_shard_spawns_worker(self, cluster_config):
        with ParallelClusterService(num_shards=2, config=cluster_config) as cluster:
            cluster.add_shard("shard-extra")
            assert cluster.shards["shard-extra"].alive
            cluster.insert(b"key", b"value")
            assert cluster.lookup(b"key").found


class TestClusterCloseSafety:
    """Satellite: ClusterService.close() is exception-safe and idempotent."""

    def test_failure_on_one_shard_still_closes_the_rest(self, cluster_config, tmp_path):
        cluster = ClusterService(
            num_shards=3,
            config=cluster_config,
            storage="persistent",
            data_dir=str(tmp_path / "cluster"),
        )
        cluster.insert(b"key", b"value")
        closed = []
        victim_id, victim = next(iter(cluster.shards.items()))
        original_close = victim.close

        def exploding_close(*args, **kwargs):
            closed.append(victim_id)
            raise RuntimeError("disk pulled mid-close")

        victim.close = exploding_close
        with pytest.raises(ClusterCloseError) as excinfo:
            cluster.close()
        assert [shard_id for shard_id, _ in excinfo.value.failures] == [victim_id]
        assert "disk pulled mid-close" in str(excinfo.value)
        # Every *other* shard was still closed despite the failure.
        for shard_id, clam in cluster.shards.items():
            if shard_id != victim_id:
                assert clam.closed
        victim.close = original_close
        cluster.close()  # idempotent once the failure is gone
        assert victim.closed
