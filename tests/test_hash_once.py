"""End-to-end guarantees of the hash-once KeyDigest pipeline.

Three claims, each enforced here:

1. **Equivalence** — with ``use_hash_once`` on or off, every operation
   returns identical results and drives the simulated devices identically
   (same flushes, incarnations, latencies).  The digest pipeline is a pure
   performance change.
2. **Hash-once** — one operation builds at most one digest and traverses the
   key bytes at most once per layer; probing several incarnations reuses the
   Bloom/page hashes that the legacy path recomputed per incarnation.
3. **Service reuse** — a digest built for consistent-hash routing is the
   digest the owning CLAM uses, end to end through the batch executor.
"""

from __future__ import annotations

import pytest

from repro.core import CLAM, CLAMConfig
from repro.core.hashing import (
    SEED_LAYERS,
    clear_digest_cache,
    count_hash_calls,
)
from repro.service import ClusterService
from repro.workloads.workload import Operation, OpKind


def _config(hash_once: bool, **overrides) -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=4,
        buffer_capacity_items=32,
        incarnations_per_table=4,
        use_hash_once=hash_once,
        **overrides,
    )


def _drive(clam: CLAM, operations):
    results = []
    for kind, key in operations:
        if kind == "insert":
            results.append(clam.insert(key, b"value-of-%r" % key))
        elif kind == "lookup":
            results.append(clam.lookup(key))
        else:
            results.append(clam.delete(key))
    return results


def _mixed_workload():
    operations = []
    for i in range(600):
        operations.append(("insert", b"wk-%04d" % (i % 250)))
        if i % 3 == 0:
            operations.append(("lookup", b"wk-%04d" % ((i * 7) % 250)))
        if i % 11 == 0:
            operations.append(("delete", b"wk-%04d" % ((i * 5) % 250)))
        if i % 17 == 0:
            operations.append(("lookup", b"absent-%04d" % i))
    return operations


class TestEquivalence:
    @pytest.mark.parametrize("bit_slicing", [True, False])
    def test_hash_once_and_legacy_paths_behave_identically(self, bit_slicing):
        clear_digest_cache()
        fast = CLAM(_config(True, use_bit_slicing=bit_slicing), storage="intel-ssd")
        slow = CLAM(_config(False, use_bit_slicing=bit_slicing), storage="intel-ssd")
        workload = _mixed_workload()
        for fast_result, slow_result in zip(_drive(fast, workload), _drive(slow, workload)):
            assert type(fast_result) is type(slow_result)
            assert fast_result.key == slow_result.key
            assert getattr(fast_result, "value", None) == getattr(slow_result, "value", None)
            assert fast_result.latency_ms == slow_result.latency_ms
        assert fast.bufferhash.total_flushes == slow.bufferhash.total_flushes
        assert fast.bufferhash.total_incarnations == slow.bufferhash.total_incarnations
        assert fast.clock.now_ms == slow.clock.now_ms
        assert fast.bufferhash.snapshot_items() == slow.bufferhash.snapshot_items()

    def test_legacy_mode_builds_no_digests(self):
        """The ablation must be pure: with ``use_hash_once=False`` nothing in
        the stack (including flush-time page placement) touches the digest
        machinery or the global digest cache."""
        from repro.core.hashing import digest_cache_info

        clear_digest_cache()
        clam = CLAM(_config(False), storage="intel-ssd")
        with count_hash_calls() as log:
            for i in range(300):  # enough to force flushes
                clam.insert(b"pure-%04d" % i, b"v")
            for i in range(300):
                clam.lookup(b"pure-%04d" % i)
        assert clam.bufferhash.total_flushes > 0
        assert log.digest_builds == 0
        assert digest_cache_info()["size"] == 0

    def test_mixed_key_types_roundtrip_through_digests(self):
        clam = CLAM(_config(True), storage="intel-ssd")
        clam.insert("string-key", b"sv")
        clam.insert(12345, b"iv")
        clam.insert(memoryview(b"mv-key"), b"mv")
        assert clam.get(b"string-key") == b"sv"  # str and bytes share one space
        assert clam.get(12345) == b"iv"
        assert clam.get(b"mv-key") == b"mv"


class TestHashOnceCounting:
    """The headline claim: per-operation key-hash invocations drop to one."""

    def _flash_resident_clam(self, hash_once: bool, bit_slicing: bool) -> CLAM:
        clam = CLAM(
            _config(hash_once, use_bit_slicing=bit_slicing),
            storage="intel-ssd",
            keep_latency_samples=False,
        )
        for i in range(800):  # enough to fill several incarnations per table
            clam.insert(b"cnt-%04d" % i, b"v")
        return clam

    @staticmethod
    def _flash_served_key(clam: CLAM) -> bytes:
        from repro.core.results import ServedFrom

        for i in reversed(range(800)):
            key = b"cnt-%04d" % i
            if clam.lookup(key).served_from is ServedFrom.INCARNATION:
                return key
        raise AssertionError("no flash-resident key found")

    def test_lookup_hashes_each_layer_at_most_once(self):
        clam = self._flash_resident_clam(hash_once=True, bit_slicing=True)
        probe = self._flash_served_key(clam)
        clear_digest_cache()
        with count_hash_calls() as log:
            result = clam.lookup(probe)
        assert result.value == b"v"
        assert log.digest_builds == 1  # the key bytes enter the pipeline once
        for seed, count in log.by_seed.items():
            assert count == 1, f"layer {SEED_LAYERS.get(seed, hex(seed))} hashed {count}x"

    def test_cached_key_is_never_rehashed(self):
        clam = self._flash_resident_clam(hash_once=True, bit_slicing=True)
        probe = b"cnt-0042"
        clam.lookup(probe)  # populate the digest cache
        with count_hash_calls() as log:
            clam.lookup(probe)
            clam.insert(probe, b"v2")
        assert log.total == 0
        assert log.digest_builds == 0

    def test_legacy_path_rehashes_bloom_per_incarnation(self):
        """Without bit slicing, the legacy path pays two Bloom passes per
        incarnation probed, the digest path exactly one per base hash."""
        legacy = self._flash_resident_clam(hash_once=False, bit_slicing=False)
        digest = self._flash_resident_clam(hash_once=True, bit_slicing=False)
        probe = b"cnt-0042"
        table = legacy.bufferhash.table_for(probe)
        assert table.incarnation_count > 1  # the probe sees several filters

        with count_hash_calls() as legacy_log:
            legacy.lookup(probe)
        clear_digest_cache()
        with count_hash_calls() as digest_log:
            digest.lookup(probe)

        legacy_layers = legacy_log.by_layer()
        digest_layers = digest_log.by_layer()
        assert legacy_layers["bloom_h1"] > 1  # one pass per incarnation's filter
        assert digest_layers["bloom_h1"] == 1
        assert digest_layers["bloom_h2"] == 1
        assert max(digest_layers.values()) == 1
        assert digest_log.total < legacy_log.total


class TestServiceReuse:
    def test_routing_digest_reaches_the_shard(self):
        """The batch executor routes and executes with one digest per key."""
        cluster = ClusterService(num_shards=3, config=_config(True), storage="dram")
        keys = [b"svc-%03d" % i for i in range(60)]
        cluster.execute_batch([Operation(OpKind.INSERT, key, b"v") for key in keys])
        clear_digest_cache()
        with count_hash_calls() as log:
            batch = cluster.execute_batch([Operation(OpKind.LOOKUP, key) for key in keys])
        assert all(result.found for result in batch.results)
        assert log.digest_builds == len(keys)
        # Ring + shard layers each hashed every key at most once.
        for layer, count in log.by_layer().items():
            assert count <= len(keys), f"{layer} hashed {count}x for {len(keys)} keys"

    def test_single_op_dispatch_matches_batch_results(self):
        sequential = ClusterService(num_shards=2, config=_config(True), storage="dram")
        batched = ClusterService(num_shards=2, config=_config(True), storage="dram")
        keys = [b"one-%03d" % i for i in range(40)]
        for key in keys:
            sequential.insert(key, b"v")
        batched.execute_batch([Operation(OpKind.INSERT, key, b"v") for key in keys])
        for key in keys:
            assert sequential.get(key) == batched.get(key) == b"v"
