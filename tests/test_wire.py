"""Tests for the length-prefixed shard wire protocol (repro.service.wire)."""

import socket
import struct

import pytest

from repro.core.errors import (
    DeviceFailedError,
    ShardUnavailableError,
    WireProtocolError,
)
from repro.core.hashing import KeyDigest
from repro.core.results import DeleteResult, InsertResult, LookupResult, ServedFrom
from repro.service import wire
from repro.workloads.workload import OpKind


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip(self, pair):
        left, right = pair
        wire.send_frame(left, wire.FRAME_CONTROL_REQUEST, b"payload-bytes")
        frame_type, payload = wire.recv_frame(right)
        assert frame_type == wire.FRAME_CONTROL_REQUEST
        assert payload == b"payload-bytes"

    def test_multiple_frames_stay_delimited(self, pair):
        left, right = pair
        for index in range(5):
            wire.send_frame(left, wire.FRAME_BATCH_REQUEST, b"x" * index)
        for index in range(5):
            _, payload = wire.recv_frame(right)
            assert payload == b"x" * index

    def test_truncated_frame_raises_typed_error(self, pair):
        """A peer dying mid-frame surfaces as TruncatedFrameError, not a hang."""
        left, right = pair
        full = struct.pack("<I", 100) + struct.pack("<BB", wire.WIRE_VERSION, 1) + b"y" * 98
        left.sendall(full[:30])  # length promises 100 body bytes; send 26
        left.close()
        with pytest.raises(wire.TruncatedFrameError, match="26 of 100"):
            wire.recv_frame(right)

    def test_eof_before_any_bytes_is_truncated(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(wire.TruncatedFrameError, match="0 of 4"):
            wire.recv_frame(right)

    def test_oversized_length_prefix_rejected(self, pair):
        """A corrupt length prefix must fail fast, not attempt a 4 GiB recv."""
        left, right = pair
        left.sendall(struct.pack("<I", wire.MAX_FRAME_BYTES + 1))
        with pytest.raises(wire.OversizedFrameError):
            wire.recv_frame(right)

    def test_oversized_send_rejected(self, pair):
        left, _right = pair

        class Huge(bytes):
            def __len__(self):
                return wire.MAX_FRAME_BYTES + 1

        with pytest.raises(wire.OversizedFrameError):
            wire.send_frame(left, wire.FRAME_BATCH_REQUEST, Huge())

    def test_wrong_version_rejected(self, pair):
        left, right = pair
        body = struct.pack("<BB", wire.WIRE_VERSION + 1, wire.FRAME_BATCH_REQUEST)
        left.sendall(struct.pack("<I", len(body)) + body)
        with pytest.raises(WireProtocolError, match="version"):
            wire.recv_frame(right)

    def test_unknown_frame_type_rejected(self, pair):
        left, right = pair
        body = struct.pack("<BB", wire.WIRE_VERSION, 99)
        left.sendall(struct.pack("<I", len(body)) + body)
        with pytest.raises(WireProtocolError, match="frame type"):
            wire.recv_frame(right)

    def test_body_shorter_than_preamble_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("<I", 1) + b"z")
        with pytest.raises(WireProtocolError, match="too short"):
            wire.recv_frame(right)


class TestErrorCodes:
    def test_none_is_silent(self):
        wire.raise_for_code(wire.ERR_NONE, "")

    def test_device_failed(self):
        with pytest.raises(DeviceFailedError, match="boom"):
            wire.raise_for_code(wire.ERR_DEVICE_FAILED, "boom")

    def test_shard_unavailable(self):
        with pytest.raises(ShardUnavailableError, match="gone"):
            wire.raise_for_code(wire.ERR_SHARD_UNAVAILABLE, "gone")

    def test_unexpected_maps_to_wire_protocol_error(self):
        with pytest.raises(WireProtocolError):
            wire.raise_for_code(wire.ERR_UNEXPECTED, "worker exploded")


class TestBatchRequest:
    def test_roundtrip_preserves_ops_keys_and_memoised_digests(self):
        digest = KeyDigest(b"fingerprint-1")
        digest.digest(7)
        digest.digest(1234567)
        operations = [
            (OpKind.INSERT, digest, b"value-bytes"),
            (OpKind.LOOKUP, b"plain-key", b""),
            (OpKind.DELETE, KeyDigest(b"dead"), b""),
            (OpKind.UPDATE, b"k2", b"\x00\xff" * 8),
        ]
        payload = wire.encode_batch_request(1.25, operations)
        advance_ms, decoded = wire.decode_batch_request(payload)
        assert advance_ms == 1.25
        assert [(k, d.data, v) for k, d, v in decoded] == [
            (OpKind.INSERT, b"fingerprint-1", b"value-bytes"),
            (OpKind.LOOKUP, b"plain-key", b""),
            (OpKind.DELETE, b"dead", b""),
            (OpKind.UPDATE, b"k2", b"\x00\xff" * 8),
        ]
        # The memoised seeded digests ride along bit-exactly (hash-once
        # across the process boundary).
        assert decoded[0][1]._seeded == digest._seeded

    def test_unknown_op_code_rejected(self):
        payload = struct.pack("<dI", 0.0, 1) + struct.pack("<B", 200)
        with pytest.raises(WireProtocolError, match="operation code"):
            wire.decode_batch_request(payload)


class TestBatchResponse:
    def roundtrip(self, results, error_code=wire.ERR_NONE, message=""):
        payload = wire.encode_batch_response(results, error_code, message, 12.5, 3.25)
        return wire.decode_batch_response(payload)

    def test_lookup_results_roundtrip_every_served_from(self):
        originals = [
            LookupResult(b"k1", b"v1", 0.123456789, ServedFrom.BUFFER),
            LookupResult(b"k2", b"v2", 1.5, ServedFrom.INCARNATION, 3, 2, 1),
            LookupResult(b"k3", None, 0.25, ServedFrom.DELETED),
            LookupResult(b"k4", None, 0.75, ServedFrom.MISSING, 4, 4, 4),
        ]
        decoded, code, message, clock_ms, busy_ms = self.roundtrip(originals)
        assert decoded == originals  # dataclass equality: every field, bit-exact
        assert (code, message) == (wire.ERR_NONE, "")
        assert (clock_ms, busy_ms) == (12.5, 3.25)

    def test_insert_and_delete_results_roundtrip(self):
        originals = [
            InsertResult(b"k", 0.1 + 0.2, flushed=True, flush_latency_ms=7.7,
                         incarnations_tried=2, flash_writes=5, flash_reads=3),
            InsertResult(b"k2", 0.001),
            DeleteResult(b"gone", 0.5, removed_from_buffer=True),
            DeleteResult(b"gone2", 1.0 / 3.0),
        ]
        decoded, _, _, _, _ = self.roundtrip(originals)
        assert decoded == originals

    def test_float_fields_survive_bit_exactly(self):
        """Latencies feed the bit-identical contract; doubles must not drift."""
        awkward = 1.0000000000000002  # one ulp above 1.0
        decoded, _, _, clock_ms, _ = wire.decode_batch_response(
            wire.encode_batch_response(
                [InsertResult(b"k", awkward)], wire.ERR_NONE, "", awkward, 0.0
            )
        )
        assert decoded[0].latency_ms == awkward
        assert clock_ms == awkward

    def test_error_code_and_message_roundtrip(self):
        decoded, code, message, _, _ = self.roundtrip(
            [InsertResult(b"k", 1.0)], wire.ERR_DEVICE_FAILED, "DeviceFailedError: dead"
        )
        assert len(decoded) == 1  # truncated result list rides with the error
        assert code == wire.ERR_DEVICE_FAILED
        assert message == "DeviceFailedError: dead"

    def test_unknown_result_record_rejected(self):
        payload = wire.encode_batch_response([], wire.ERR_NONE, "", 0.0, 0.0)
        payload += struct.pack("<BI", 77, 0)
        header = struct.calcsize("<ddBII")
        broken = payload[:header].replace(
            struct.pack("<I", 0), struct.pack("<I", 1), 1
        )
        # Rebuild with result_count=1 pointing at the bogus record.
        clock_ms, busy_ms, code, msg_len, _ = struct.unpack_from("<ddBII", payload)
        broken = struct.pack("<ddBII", clock_ms, busy_ms, code, msg_len, 1) + payload[header:]
        with pytest.raises(WireProtocolError, match="record type"):
            wire.decode_batch_response(broken)


class TestControlFrames:
    def test_roundtrip(self):
        message = {"op": "fault", "mode": "crash", "kwargs": {"after_n_ios": 3}}
        assert wire.decode_control(wire.encode_control(message)) == message

    def test_malformed_json_rejected(self):
        with pytest.raises(WireProtocolError, match="malformed"):
            wire.decode_control(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(WireProtocolError, match="object"):
            wire.decode_control(b"[1, 2, 3]")


class TestKeyDigestWire:
    def test_digest_without_seeds(self):
        digest, offset = KeyDigest.from_wire(KeyDigest(b"abc").to_wire())
        assert digest.data == b"abc"
        assert digest._seeded == {}
        assert offset == 5 + 3

    def test_consecutive_digests_share_buffer(self):
        first = KeyDigest(b"one")
        first.digest(1)
        second = KeyDigest(b"two")
        payload = first.to_wire() + second.to_wire()
        a, offset = KeyDigest.from_wire(payload)
        b, end = KeyDigest.from_wire(payload, offset)
        assert (a.data, b.data) == (b"one", b"two")
        assert a._seeded == first._seeded
        assert end == len(payload)
