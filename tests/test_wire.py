"""Tests for the length-prefixed shard wire protocol (repro.service.wire)."""

import socket
import struct
import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import (
    DeviceFailedError,
    ShardUnavailableError,
    WireProtocolError,
)
from repro.core.hashing import KeyDigest
from repro.core.results import DeleteResult, InsertResult, LookupResult, ServedFrom
from repro.service import wire
from repro.workloads.workload import OpKind


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def craft_frame(version: int, frame_type: int, seq: int, payload: bytes) -> bytes:
    """A raw v2 frame with a *valid* CRC, for byte-level tampering tests."""
    covered = struct.pack("<BBI", version, frame_type, seq) + payload
    return struct.pack("<I", len(covered) + 4) + struct.pack("<I", zlib.crc32(covered)) + covered


class ByteSock:
    """An in-memory socket double: serves a byte string, then EOF.

    Lets the fuzz tests run thousands of ``recv_frame`` calls without a
    socketpair per mutation."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0

    def recv(self, size: int) -> bytes:
        chunk = self._data[self._pos : self._pos + size]
        self._pos += len(chunk)
        return chunk


class TestFraming:
    def test_roundtrip(self, pair):
        left, right = pair
        wire.send_frame(left, wire.FRAME_CONTROL_REQUEST, b"payload-bytes", seq=42)
        frame_type, seq, payload = wire.recv_frame(right)
        assert frame_type == wire.FRAME_CONTROL_REQUEST
        assert seq == 42
        assert payload == b"payload-bytes"

    def test_default_seq_is_zero(self, pair):
        left, right = pair
        wire.send_frame(left, wire.FRAME_CONTROL_REQUEST, b"")
        _, seq, _ = wire.recv_frame(right)
        assert seq == 0

    def test_multiple_frames_stay_delimited(self, pair):
        left, right = pair
        for index in range(5):
            wire.send_frame(left, wire.FRAME_BATCH_REQUEST, b"x" * index, seq=index)
        for index in range(5):
            _, seq, payload = wire.recv_frame(right)
            assert seq == index
            assert payload == b"x" * index

    def test_truncated_frame_raises_typed_error(self, pair):
        """A peer dying mid-frame surfaces as TruncatedFrameError, not a hang."""
        left, right = pair
        full = craft_frame(wire.WIRE_VERSION, wire.FRAME_BATCH_REQUEST, 0, b"y" * 90)
        assert struct.unpack_from("<I", full)[0] == 100  # 10-byte overhead + payload
        left.sendall(full[:30])  # length promises 100 body bytes; send 26
        left.close()
        with pytest.raises(wire.TruncatedFrameError, match="26 of 100"):
            wire.recv_frame(right)

    def test_eof_before_any_bytes_is_truncated(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(wire.TruncatedFrameError, match="0 of 4"):
            wire.recv_frame(right)

    def test_oversized_length_prefix_rejected(self, pair):
        """A corrupt length prefix must fail fast, not attempt a 4 GiB recv."""
        left, right = pair
        left.sendall(struct.pack("<I", wire.MAX_FRAME_BYTES + 1))
        with pytest.raises(wire.OversizedFrameError):
            wire.recv_frame(right)

    def test_oversized_send_rejected(self, pair):
        left, _right = pair

        class Huge(bytes):
            def __len__(self):
                return wire.MAX_FRAME_BYTES + 1

        with pytest.raises(wire.OversizedFrameError):
            wire.send_frame(left, wire.FRAME_BATCH_REQUEST, Huge())

    def test_wrong_version_rejected(self, pair):
        left, right = pair
        left.sendall(craft_frame(wire.WIRE_VERSION + 1, wire.FRAME_BATCH_REQUEST, 0, b""))
        with pytest.raises(WireProtocolError, match="version"):
            wire.recv_frame(right)

    def test_unknown_frame_type_rejected(self, pair):
        left, right = pair
        left.sendall(craft_frame(wire.WIRE_VERSION, 99, 0, b""))
        with pytest.raises(WireProtocolError, match="frame type"):
            wire.recv_frame(right)

    def test_body_shorter_than_preamble_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack("<I", 1) + b"z")
        with pytest.raises(WireProtocolError, match="too short"):
            wire.recv_frame(right)

    def test_corrupt_payload_raises_corrupt_frame_error(self, pair):
        left, right = pair
        frame = bytearray(craft_frame(wire.WIRE_VERSION, wire.FRAME_BATCH_REQUEST, 3, b"abcdef"))
        frame[-2] ^= 0x10  # one bit, deep in the payload
        left.sendall(bytes(frame))
        with pytest.raises(wire.CorruptFrameError, match="CRC"):
            wire.recv_frame(right)

    def test_corrupt_preamble_is_crc_not_version_error(self, pair):
        """The CRC covers the preamble, so a flipped version byte is reported
        as corruption (retryable) rather than a version mismatch (fatal)."""
        left, right = pair
        frame = bytearray(craft_frame(wire.WIRE_VERSION, wire.FRAME_BATCH_REQUEST, 0, b"pp"))
        frame[8] ^= 0x04  # the version byte (after 4-byte length + 4-byte crc)
        left.sendall(bytes(frame))
        with pytest.raises(wire.CorruptFrameError):
            wire.recv_frame(right)

    def test_corrupt_frame_error_is_wire_protocol_error(self):
        assert issubclass(wire.CorruptFrameError, WireProtocolError)


def _sample_frames():
    """One realistic frame of every type, for the tamper/fuzz sweeps."""
    digest = KeyDigest(b"fingerprint-xyz")
    digest.digest(7)
    request = wire.encode_batch_request(
        1.25,
        [
            (OpKind.INSERT, digest, b"value-bytes"),
            (OpKind.LOOKUP, b"plain-key", b""),
            (OpKind.DELETE, KeyDigest(b"dead"), b""),
        ],
    )
    response = wire.encode_batch_response(
        [
            LookupResult(b"k1", b"v1", 0.125, ServedFrom.BUFFER, 1, 2, 0),
            InsertResult(b"k2", 0.25, flushed=True, flush_latency_ms=1.5),
            DeleteResult(b"k3", 0.5, removed_from_buffer=True),
        ],
        wire.ERR_DEVICE_FAILED,
        "DeviceFailedError: boom",
        12.5,
        3.25,
    )
    control = wire.encode_control({"op": "fault", "mode": "crash", "kwargs": {"n": 3}})
    return [
        (wire.FRAME_BATCH_REQUEST, request),
        (wire.FRAME_BATCH_RESPONSE, response),
        (wire.FRAME_CONTROL_REQUEST, control),
        (wire.FRAME_CONTROL_RESPONSE, control),
    ]


class TestWireFuzz:
    """Adversarial bytes must always surface as *typed* wire errors.

    The contract under fuzz is: any single-byte flip or truncation, anywhere
    in any frame type, decodes to a WireProtocolError subclass (or decodes
    successfully when the flip lands in dead space) — never a raw
    struct.error, UnicodeDecodeError, IndexError or MemoryError.
    """

    @pytest.mark.parametrize("frame_type,payload", _sample_frames())
    def test_single_byte_flips_always_typed(self, frame_type, payload):
        frame = craft_frame(wire.WIRE_VERSION, frame_type, 5, payload)
        for position in range(len(frame)):
            for mask in (0x01, 0x80, 0xFF):
                mutated = bytearray(frame)
                mutated[position] ^= mask
                try:
                    kind, _seq, decoded = wire.recv_frame(ByteSock(bytes(mutated)))
                except WireProtocolError:
                    continue  # typed: exactly what the contract demands
                # A flip that still framed correctly must be caught (or be a
                # no-op) by the payload decoders — also without raw errors.
                try:
                    if kind == wire.FRAME_BATCH_REQUEST:
                        wire.decode_batch_request(decoded)
                    elif kind == wire.FRAME_BATCH_RESPONSE:
                        wire.decode_batch_response(decoded)
                    else:
                        wire.decode_control(decoded)
                except WireProtocolError:
                    pass

    @pytest.mark.parametrize("frame_type,payload", _sample_frames())
    def test_truncations_always_typed(self, frame_type, payload):
        frame = craft_frame(wire.WIRE_VERSION, frame_type, 5, payload)
        for cut in range(len(frame)):
            with pytest.raises(WireProtocolError):
                wire.recv_frame(ByteSock(frame[:cut]))

    @pytest.mark.parametrize("frame_type,payload", _sample_frames())
    def test_payload_mutations_never_raise_raw_errors(self, frame_type, payload):
        """Even *past* the CRC (an attacker or a memory flip on the far side
        of the checksum), the payload decoders are fully bounds-checked."""
        decoders = {
            wire.FRAME_BATCH_REQUEST: wire.decode_batch_request,
            wire.FRAME_BATCH_RESPONSE: wire.decode_batch_response,
            wire.FRAME_CONTROL_REQUEST: wire.decode_control,
            wire.FRAME_CONTROL_RESPONSE: wire.decode_control,
        }
        decode = decoders[frame_type]
        for cut in range(len(payload)):
            try:
                decode(payload[:cut])
            except WireProtocolError:
                pass
        for position in range(len(payload)):
            mutated = bytearray(payload)
            mutated[position] ^= 0xFF
            try:
                decode(bytes(mutated))
            except WireProtocolError:
                pass


class TestFramingProperties:
    @given(
        frame_type=st.sampled_from(
            [
                wire.FRAME_BATCH_REQUEST,
                wire.FRAME_BATCH_RESPONSE,
                wire.FRAME_CONTROL_REQUEST,
                wire.FRAME_CONTROL_RESPONSE,
            ]
        ),
        seq=st.integers(min_value=0, max_value=2**32 - 1),
        payload=st.binary(max_size=512),
    )
    def test_crc_framing_roundtrip(self, frame_type, seq, payload):
        """Every (type, seq, payload) survives the CRC framing bit-exactly."""
        sent = []

        class Capture:
            def sendall(self, data):
                sent.append(bytes(data))

        wire.send_frame(Capture(), frame_type, payload, seq=seq)
        assert len(sent) == 1  # one frame, one write (the chaos layer relies on it)
        got_type, got_seq, got_payload = wire.recv_frame(ByteSock(sent[0]))
        assert (got_type, got_seq, got_payload) == (frame_type, seq, payload)

    @given(
        payload=st.binary(max_size=128),
        position=st.integers(min_value=0, max_value=10_000),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_any_single_bit_flip_is_detected(self, payload, position, bit):
        """CRC-32 detects every single-bit error; flips in the length prefix
        fall out as truncation/oversize/short-body errors — all typed."""
        frame = bytearray(craft_frame(wire.WIRE_VERSION, wire.FRAME_BATCH_REQUEST, 9, payload))
        frame[position % len(frame)] ^= 1 << bit
        with pytest.raises(WireProtocolError):
            wire.recv_frame(ByteSock(bytes(frame)))


class TestErrorCodes:
    def test_none_is_silent(self):
        wire.raise_for_code(wire.ERR_NONE, "")

    def test_device_failed(self):
        with pytest.raises(DeviceFailedError, match="boom"):
            wire.raise_for_code(wire.ERR_DEVICE_FAILED, "boom")

    def test_shard_unavailable(self):
        with pytest.raises(ShardUnavailableError, match="gone"):
            wire.raise_for_code(wire.ERR_SHARD_UNAVAILABLE, "gone")

    def test_unexpected_maps_to_wire_protocol_error(self):
        with pytest.raises(WireProtocolError):
            wire.raise_for_code(wire.ERR_UNEXPECTED, "worker exploded")


class TestBatchRequest:
    def test_roundtrip_preserves_ops_keys_and_memoised_digests(self):
        digest = KeyDigest(b"fingerprint-1")
        digest.digest(7)
        digest.digest(1234567)
        operations = [
            (OpKind.INSERT, digest, b"value-bytes"),
            (OpKind.LOOKUP, b"plain-key", b""),
            (OpKind.DELETE, KeyDigest(b"dead"), b""),
            (OpKind.UPDATE, b"k2", b"\x00\xff" * 8),
        ]
        payload = wire.encode_batch_request(1.25, operations)
        advance_ms, decoded = wire.decode_batch_request(payload)
        assert advance_ms == 1.25
        assert [(k, d.data, v) for k, d, v in decoded] == [
            (OpKind.INSERT, b"fingerprint-1", b"value-bytes"),
            (OpKind.LOOKUP, b"plain-key", b""),
            (OpKind.DELETE, b"dead", b""),
            (OpKind.UPDATE, b"k2", b"\x00\xff" * 8),
        ]
        # The memoised seeded digests ride along bit-exactly (hash-once
        # across the process boundary).
        assert decoded[0][1]._seeded == digest._seeded

    def test_unknown_op_code_rejected(self):
        payload = struct.pack("<dI", 0.0, 1) + struct.pack("<B", 200)
        with pytest.raises(WireProtocolError, match="operation code"):
            wire.decode_batch_request(payload)

    def test_truncated_value_rejected(self):
        payload = wire.encode_batch_request(0.0, [(OpKind.INSERT, b"key", b"value")])
        with pytest.raises(WireProtocolError, match="truncated"):
            wire.decode_batch_request(payload[:-2])


class TestBatchResponse:
    def roundtrip(self, results, error_code=wire.ERR_NONE, message=""):
        payload = wire.encode_batch_response(results, error_code, message, 12.5, 3.25)
        return wire.decode_batch_response(payload)

    def test_lookup_results_roundtrip_every_served_from(self):
        originals = [
            LookupResult(b"k1", b"v1", 0.123456789, ServedFrom.BUFFER),
            LookupResult(b"k2", b"v2", 1.5, ServedFrom.INCARNATION, 3, 2, 1),
            LookupResult(b"k3", None, 0.25, ServedFrom.DELETED),
            LookupResult(b"k4", None, 0.75, ServedFrom.MISSING, 4, 4, 4),
        ]
        decoded, code, message, clock_ms, busy_ms = self.roundtrip(originals)
        assert decoded == originals  # dataclass equality: every field, bit-exact
        assert (code, message) == (wire.ERR_NONE, "")
        assert (clock_ms, busy_ms) == (12.5, 3.25)

    def test_insert_and_delete_results_roundtrip(self):
        originals = [
            InsertResult(b"k", 0.1 + 0.2, flushed=True, flush_latency_ms=7.7,
                         incarnations_tried=2, flash_writes=5, flash_reads=3),
            InsertResult(b"k2", 0.001),
            DeleteResult(b"gone", 0.5, removed_from_buffer=True),
            DeleteResult(b"gone2", 1.0 / 3.0),
        ]
        decoded, _, _, _, _ = self.roundtrip(originals)
        assert decoded == originals

    def test_float_fields_survive_bit_exactly(self):
        """Latencies feed the bit-identical contract; doubles must not drift."""
        awkward = 1.0000000000000002  # one ulp above 1.0
        decoded, _, _, clock_ms, _ = wire.decode_batch_response(
            wire.encode_batch_response(
                [InsertResult(b"k", awkward)], wire.ERR_NONE, "", awkward, 0.0
            )
        )
        assert decoded[0].latency_ms == awkward
        assert clock_ms == awkward

    def test_error_code_and_message_roundtrip(self):
        decoded, code, message, _, _ = self.roundtrip(
            [InsertResult(b"k", 1.0)], wire.ERR_DEVICE_FAILED, "DeviceFailedError: dead"
        )
        assert len(decoded) == 1  # truncated result list rides with the error
        assert code == wire.ERR_DEVICE_FAILED
        assert message == "DeviceFailedError: dead"

    def test_unknown_result_record_rejected(self):
        payload = wire.encode_batch_response([], wire.ERR_NONE, "", 0.0, 0.0)
        payload += struct.pack("<BI", 77, 0)
        header = struct.calcsize("<ddBII")
        broken = payload[:header].replace(
            struct.pack("<I", 0), struct.pack("<I", 1), 1
        )
        # Rebuild with result_count=1 pointing at the bogus record.
        clock_ms, busy_ms, code, msg_len, _ = struct.unpack_from("<ddBII", payload)
        broken = struct.pack("<ddBII", clock_ms, busy_ms, code, msg_len, 1) + payload[header:]
        with pytest.raises(WireProtocolError, match="record type"):
            wire.decode_batch_response(broken)

    def test_invalid_utf8_message_rejected(self):
        payload = wire.encode_batch_response([], wire.ERR_UNEXPECTED, "abc", 0.0, 0.0)
        broken = payload.replace(b"abc", b"\xff\xfe\xff")
        with pytest.raises(WireProtocolError, match="message"):
            wire.decode_batch_response(broken)


class TestControlFrames:
    def test_roundtrip(self):
        message = {"op": "fault", "mode": "crash", "kwargs": {"after_n_ios": 3}}
        assert wire.decode_control(wire.encode_control(message)) == message

    def test_malformed_json_rejected(self):
        with pytest.raises(WireProtocolError, match="malformed"):
            wire.decode_control(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(WireProtocolError, match="object"):
            wire.decode_control(b"[1, 2, 3]")


class TestKeyDigestWire:
    def test_digest_without_seeds(self):
        digest, offset = KeyDigest.from_wire(KeyDigest(b"abc").to_wire())
        assert digest.data == b"abc"
        assert digest._seeded == {}
        assert offset == 5 + 3

    def test_consecutive_digests_share_buffer(self):
        first = KeyDigest(b"one")
        first.digest(1)
        second = KeyDigest(b"two")
        payload = first.to_wire() + second.to_wire()
        a, offset = KeyDigest.from_wire(payload)
        b, end = KeyDigest.from_wire(payload, offset)
        assert (a.data, b.data) == (b"one", b"two")
        assert a._seeded == first._seeded
        assert end == len(payload)
