"""Tests for the deduplication pipeline and the content-name directory."""

import pytest

from repro.baselines import DRAMHashIndex, ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.dedup import ChunkStore, DedupIndex, merge_indexes
from repro.dedup.merge import scale_merge_time
from repro.directory import ContentDirectory
from repro.flashsim import MagneticDisk, SSD, SimulationClock
from repro.wanopt.fingerprint import Chunk, fingerprint_bytes


def _chunks(count, prefix=b"chunk", size=4096):
    return [
        Chunk(fingerprint=fingerprint_bytes(b"%s-%d" % (prefix, i)), size=size)
        for i in range(count)
    ]


class TestChunkStore:
    def test_append_and_read(self):
        store = ChunkStore(MagneticDisk(clock=SimulationClock()))
        address, latency = store.append(size=1000, payload=b"z" * 1000)
        assert latency > 0
        payload, _read_latency = store.read(address)
        assert payload == b"z" * 1000

    def test_unknown_address_rejected(self):
        store = ChunkStore(MagneticDisk(clock=SimulationClock()))
        with pytest.raises(KeyError):
            store.read(12345)

    def test_dedup_ratio(self):
        store = ChunkStore(MagneticDisk(clock=SimulationClock()))
        store.append(size=1000)
        store.note_duplicate(size=3000)
        assert store.dedup_ratio == pytest.approx(4.0)


class TestDedupIndex:
    def test_duplicates_suppressed(self):
        clock = SimulationClock()
        clam = CLAM(CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64), storage=SSD(clock=clock))
        dedup = DedupIndex(clam, store=ChunkStore(MagneticDisk(clock=clock)))
        chunks = _chunks(50)
        dedup.ingest(chunks)
        dedup.ingest(chunks)  # the second pass is 100% duplicates
        assert dedup.stats.chunks_stored == 50
        assert dedup.stats.duplicates_suppressed == 50
        assert dedup.stats.dedup_ratio == pytest.approx(2.0)

    def test_ingest_chunk_reports_duplicate_flag(self):
        dedup = DedupIndex(DRAMHashIndex())
        chunk = _chunks(1)[0]
        first, _ = dedup.ingest_chunk(chunk)
        second, _ = dedup.ingest_chunk(chunk)
        assert first is False
        assert second is True

    def test_contains(self):
        dedup = DedupIndex(DRAMHashIndex())
        chunk = _chunks(1)[0]
        assert not dedup.contains(chunk.fingerprint)
        dedup.ingest_chunk(chunk)
        assert dedup.contains(chunk.fingerprint)


class TestIndexMerge:
    def test_merge_adds_only_new_fingerprints(self):
        larger = DRAMHashIndex()
        shared = [(fingerprint_bytes(b"shared-%d" % i), b"addr") for i in range(20)]
        new = [(fingerprint_bytes(b"new-%d" % i), b"addr") for i in range(30)]
        for fingerprint, value in shared:
            larger.insert(fingerprint, value)
        report = merge_indexes(larger, shared + new)
        assert report.fingerprints_processed == 50
        assert report.already_present == 20
        assert report.new_fingerprints == 30
        assert report.total_time_ms > 0

    def test_clam_merge_much_faster_than_bdb_merge(self):
        """The §3 comparison: merging into a CLAM is orders of magnitude faster
        than merging into a disk-based BDB index."""
        entries = [(fingerprint_bytes(b"merge-%d" % i), b"addr") for i in range(400)]

        clam = CLAM(CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64), storage="intel-ssd")
        clam_report = merge_indexes(clam, entries)

        bdb = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=0)
        bdb_report = merge_indexes(bdb, entries)

        assert clam_report.total_time_ms * 20 < bdb_report.total_time_ms

    def test_scale_merge_time(self):
        larger = DRAMHashIndex()
        entries = [(fingerprint_bytes(b"x-%d" % i), b"v") for i in range(100)]
        report = merge_indexes(larger, entries)
        scaled = scale_merge_time(report, measured_fingerprints=100, target_fingerprints=10_000)
        assert scaled == pytest.approx(report.total_time_minutes * 100, rel=0.01)
        with pytest.raises(ValueError):
            scale_merge_time(report, 0, 10)


class TestContentDirectory:
    def test_publish_and_resolve(self):
        directory = ContentDirectory(DRAMHashIndex())
        name = fingerprint_bytes(b"content-1")
        directory.publish(name, "host-a")
        directory.publish(name, "host-b")
        result = directory.resolve(name)
        assert result.found
        assert result.hosts == ["host-a", "host-b"]

    def test_duplicate_publish_is_idempotent(self):
        directory = ContentDirectory(DRAMHashIndex())
        name = fingerprint_bytes(b"content-2")
        directory.publish(name, "host-a")
        registration = directory.publish(name, "host-a")
        assert registration.hosts_now == 1

    def test_withdraw(self):
        directory = ContentDirectory(DRAMHashIndex())
        name = fingerprint_bytes(b"content-3")
        directory.publish(name, "host-a")
        directory.withdraw(name, "host-a")
        assert not directory.resolve(name).found

    def test_unknown_name_resolves_to_nothing(self):
        directory = ContentDirectory(DRAMHashIndex())
        assert not directory.resolve(fingerprint_bytes(b"unknown")).found

    def test_host_list_capped(self):
        directory = ContentDirectory(DRAMHashIndex(), max_hosts_per_name=4)
        name = fingerprint_bytes(b"popular")
        for i in range(10):
            directory.publish(name, "host-%d" % i)
        assert len(directory.resolve(name).hosts) == 4

    def test_works_on_clam_backend(self):
        directory = ContentDirectory(
            CLAM(CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64), storage="intel-ssd")
        )
        names = [fingerprint_bytes(b"content-%d" % i) for i in range(200)]
        for i, name in enumerate(names):
            directory.publish(name, "host-%d" % (i % 5))
        found = sum(1 for name in names if directory.resolve(name).found)
        assert found == len(names)
        assert directory.publishes == 200
        assert directory.resolutions == 200
