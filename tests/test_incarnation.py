"""Tests for incarnation page layout (serialisation, page-addressed lookup)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import KeyTooLargeError, build_pages, search_page
from repro.core.incarnation import (
    IncarnationHandle,
    iter_page_entries,
    page_index_for_key,
    page_overflowed,
)


class TestPageIndexForKey:
    def test_deterministic_and_in_range(self):
        for i in range(100):
            index = page_index_for_key(b"key-%d" % i, 16)
            assert 0 <= index < 16
            assert index == page_index_for_key(b"key-%d" % i, 16)

    def test_invalid_page_count_rejected(self):
        with pytest.raises(ValueError):
            page_index_for_key(b"key", 0)


class TestBuildAndSearchPages:
    def test_round_trip_every_key_found_on_its_probe_path(self):
        items = {b"key-%d" % i: b"value-%d" % i for i in range(100)}
        pages = build_pages(items, num_pages=8, page_size=512)
        assert len(pages) == 8
        for key, value in items.items():
            found = self._probe(pages, key)
            assert found == value

    @staticmethod
    def _probe(pages, key):
        """Follow the same probe sequence the super table lookup uses."""
        start = page_index_for_key(key, len(pages))
        for offset in range(len(pages)):
            image = pages[(start + offset) % len(pages)]
            value, overflowed = search_page(image, key)
            if value is not None:
                return value
            if not overflowed:
                return None
        return None

    def test_absent_key_not_found(self):
        items = {b"key-%d" % i: b"v" for i in range(50)}
        pages = build_pages(items, num_pages=8, page_size=512)
        assert self._probe(pages, b"absent") is None

    def test_pages_respect_size_limit(self):
        items = {b"key-%d" % i: b"v" * 20 for i in range(200)}
        pages = build_pages(items, num_pages=16, page_size=512)
        assert all(len(page) <= 512 for page in pages)

    def test_empty_items_produce_empty_pages(self):
        pages = build_pages({}, num_pages=4, page_size=256)
        assert len(pages) == 4
        assert all(list(iter_page_entries(page)) == [] for page in pages)

    def test_overflow_flag_set_when_bucket_spills(self):
        # Force spilling by using a single tiny page size and many items.
        items = {b"key-%d" % i: b"v" * 30 for i in range(40)}
        pages = build_pages(items, num_pages=8, page_size=256)
        assert any(page_overflowed(page) for page in pages)
        # And despite spilling, everything remains findable.
        for key, value in items.items():
            assert self._probe(pages, key) == value

    def test_item_too_large_for_page_rejected(self):
        with pytest.raises(KeyTooLargeError):
            build_pages({b"k": b"v" * 1024}, num_pages=4, page_size=256)

    def test_items_exceeding_total_capacity_rejected(self):
        items = {b"key-%d" % i: b"v" * 100 for i in range(100)}
        with pytest.raises(KeyTooLargeError):
            build_pages(items, num_pages=2, page_size=256)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            build_pages({b"k": b"v"}, num_pages=0, page_size=256)
        with pytest.raises(ValueError):
            build_pages({b"k": b"v"}, num_pages=4, page_size=4)

    def test_iter_page_entries_round_trip(self):
        items = {b"alpha": b"1", b"beta": b"22", b"gamma": b"333"}
        pages = build_pages(items, num_pages=1, page_size=512)
        assert dict(iter_page_entries(pages[0])) == items

    def test_search_empty_page(self):
        value, overflowed = search_page(b"", b"key")
        assert value is None
        assert overflowed is False

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=20),
            st.binary(min_size=0, max_size=20),
            min_size=0,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=16),
    )
    def test_property_round_trip(self, items, num_pages):
        pages = build_pages(items, num_pages=num_pages, page_size=2048)
        for key, value in items.items():
            assert self._probe(pages, key) == value


class TestIncarnationHandle:
    def test_fields(self):
        handle = IncarnationHandle(incarnation_id=3, address=128, num_pages=4, item_count=57)
        assert handle.incarnation_id == 3
        assert handle.address == 128
        assert handle.num_pages == 4
        assert handle.item_count == 57
