"""Tests for the simulation clock and the multi-clock ensemble view."""

import pytest

from repro.flashsim import ClockEnsemble, SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now_ms == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(start_ms=12.5).now_ms == 12.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(start_ms=-1.0)

    def test_advance_accumulates(self):
        clock = SimulationClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimulationClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_advance_negative_rejected(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_zero_allowed(self):
        clock = SimulationClock()
        clock.advance(0.0)
        assert clock.now_ms == 0.0

    def test_now_seconds(self):
        clock = SimulationClock()
        clock.advance(2500.0)
        assert clock.now_s == pytest.approx(2.5)

    def test_advance_seconds(self):
        clock = SimulationClock()
        clock.advance_seconds(0.25)
        assert clock.now_ms == pytest.approx(250.0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance(100.0)
        clock.reset()
        assert clock.now_ms == 0.0

    def test_reset_to_value(self):
        clock = SimulationClock()
        clock.advance(100.0)
        clock.reset(to_ms=5.0)
        assert clock.now_ms == 5.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock().reset(to_ms=-5.0)


class TestClockEnsemble:
    def test_empty_ensemble_reads_zero(self):
        ensemble = ClockEnsemble()
        assert ensemble.now_ms == 0.0
        assert ensemble.busy_ms == 0.0
        assert ensemble.skew_ms == 0.0
        assert len(ensemble) == 0

    def test_now_is_slowest_member(self):
        a, b, c = SimulationClock(), SimulationClock(), SimulationClock()
        ensemble = ClockEnsemble([a, b, c])
        a.advance(5.0)
        b.advance(12.0)
        c.advance(1.0)
        assert ensemble.now_ms == pytest.approx(12.0)
        assert ensemble.now_s == pytest.approx(0.012)

    def test_busy_is_total_work(self):
        a, b = SimulationClock(), SimulationClock()
        ensemble = ClockEnsemble([a, b])
        a.advance(5.0)
        b.advance(7.0)
        assert ensemble.busy_ms == pytest.approx(12.0)

    def test_skew_spans_fastest_to_slowest(self):
        a, b = SimulationClock(), SimulationClock()
        ensemble = ClockEnsemble([a, b])
        a.advance(3.0)
        b.advance(10.0)
        assert ensemble.skew_ms == pytest.approx(7.0)
        assert ensemble.member_times_ms() == (3.0, 10.0)

    def test_add_and_remove_members(self):
        a = SimulationClock()
        ensemble = ClockEnsemble([a])
        late = SimulationClock()
        late.advance(42.0)
        ensemble.add(late)
        assert ensemble.now_ms == pytest.approx(42.0)
        ensemble.remove(late)
        assert len(ensemble) == 1
        # Time is monotonic across membership changes: the removed member's
        # final time is retired into a floor, not rewound.
        assert ensemble.now_ms == pytest.approx(42.0)
        assert ensemble.busy_ms == pytest.approx(42.0)
        a.advance(50.0)
        assert ensemble.now_ms == pytest.approx(50.0)
        assert ensemble.busy_ms == pytest.approx(92.0)

    def test_rejoining_member_is_not_double_counted(self):
        clock = SimulationClock()
        clock.advance(100.0)
        ensemble = ClockEnsemble([clock])
        ensemble.remove(clock)
        ensemble.add(clock)
        assert ensemble.busy_ms == pytest.approx(100.0)
        assert ensemble.now_ms == pytest.approx(100.0)
        assert len(ensemble) == 1

    def test_rejects_non_clock_members(self):
        with pytest.raises(TypeError):
            ClockEnsemble([object()])
        with pytest.raises(TypeError):
            ClockEnsemble().add(object())
