"""Tests for the simulation clock."""

import pytest

from repro.flashsim import SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now_ms == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(start_ms=12.5).now_ms == 12.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(start_ms=-1.0)

    def test_advance_accumulates(self):
        clock = SimulationClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimulationClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_advance_negative_rejected(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_zero_allowed(self):
        clock = SimulationClock()
        clock.advance(0.0)
        assert clock.now_ms == 0.0

    def test_now_seconds(self):
        clock = SimulationClock()
        clock.advance(2500.0)
        assert clock.now_s == pytest.approx(2.5)

    def test_advance_seconds(self):
        clock = SimulationClock()
        clock.advance_seconds(0.25)
        assert clock.now_ms == pytest.approx(250.0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance(100.0)
        clock.reset()
        assert clock.now_ms == 0.0

    def test_reset_to_value(self):
        clock = SimulationClock()
        clock.advance(100.0)
        clock.reset(to_ms=5.0)
        assert clock.now_ms == 5.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock().reset(to_ms=-5.0)
