"""Tests for the bucketised cuckoo hash table used by buffers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CapacityError, CuckooHashTable


class TestCuckooBasics:
    def test_put_and_get(self):
        table = CuckooHashTable(64)
        table.put(b"key", b"value")
        assert table.get(b"key") == b"value"

    def test_missing_key_returns_none(self):
        assert CuckooHashTable(64).get(b"missing") is None

    def test_update_in_place(self):
        table = CuckooHashTable(64)
        table.put(b"key", b"v1")
        table.put(b"key", b"v2")
        assert table.get(b"key") == b"v2"
        assert len(table) == 1

    def test_delete(self):
        table = CuckooHashTable(64)
        table.put(b"key", b"value")
        assert table.delete(b"key") is True
        assert table.get(b"key") is None
        assert len(table) == 0

    def test_delete_missing_returns_false(self):
        assert CuckooHashTable(64).delete(b"nope") is False

    def test_contains(self):
        table = CuckooHashTable(64)
        table.put(b"key", b"value")
        assert b"key" in table
        assert b"other" not in table

    def test_items_returns_everything(self):
        table = CuckooHashTable(64)
        expected = {b"k%d" % i: b"v%d" % i for i in range(20)}
        for key, value in expected.items():
            table.put(key, value)
        assert dict(table.items()) == expected

    def test_clear(self):
        table = CuckooHashTable(64)
        table.put(b"key", b"value")
        table.clear()
        assert len(table) == 0
        assert table.get(b"key") is None

    def test_load_factor(self):
        table = CuckooHashTable(64)
        for i in range(16):
            table.put(b"k%d" % i, b"v")
        assert table.load_factor() == pytest.approx(16 / table.num_slots)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CuckooHashTable(0)


class TestCuckooCapacity:
    def test_sustains_paper_utilisation(self):
        """The paper runs buffers at 50% utilisation; the table must comfortably
        hold that (and more) without displacement failures."""
        table = CuckooHashTable(256)
        for i in range(200):  # ~78% load
            table.put(b"key-%d" % i, b"v")
        assert len(table) == 200

    def test_overflow_raises_capacity_error_and_preserves_contents(self):
        table = CuckooHashTable(8)
        stored = {}
        with pytest.raises(CapacityError):
            for i in range(100):
                key = b"z%d" % i
                table.put(key, b"v%d" % i)
                stored[key] = b"v%d" % i
        # Everything successfully inserted before the failure must still be intact.
        for key, value in stored.items():
            assert table.get(key) == value

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=12), st.binary(min_size=0, max_size=8)),
            min_size=0,
            max_size=120,
        )
    )
    def test_property_matches_dict_model(self, pairs):
        """The cuckoo table behaves exactly like a dict for put/get, up to
        capacity failures (which leave prior contents untouched)."""
        table = CuckooHashTable(256)
        model = {}
        for key, value in pairs:
            try:
                table.put(key, value)
            except CapacityError:
                break
            model[key] = value
        for key, value in model.items():
            assert table.get(key) == value
        assert len(table) == len(model)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=60, unique=True))
    def test_property_delete_removes_only_target(self, keys):
        table = CuckooHashTable(512)
        for key in keys:
            table.put(key, key)
        victim = keys[0]
        table.delete(victim)
        assert table.get(victim) is None
        for key in keys[1:]:
            assert table.get(key) == key
