"""Tests for operation result records and aggregated statistics."""

import pytest

from repro.core import InsertResult, LookupResult, OperationStats, ServedFrom


class TestLookupResult:
    def test_found_property(self):
        hit = LookupResult(key=b"k", value=b"v", latency_ms=0.1, served_from=ServedFrom.BUFFER)
        miss = LookupResult(key=b"k", value=None, latency_ms=0.1, served_from=ServedFrom.MISSING)
        assert hit.found is True
        assert miss.found is False


class TestOperationStats:
    def test_lookup_aggregates(self):
        stats = OperationStats()
        stats.record_lookup(
            LookupResult(key=b"a", value=b"v", latency_ms=1.0, served_from=ServedFrom.BUFFER)
        )
        stats.record_lookup(
            LookupResult(key=b"b", value=None, latency_ms=3.0, served_from=ServedFrom.MISSING)
        )
        assert stats.lookups == 2
        assert stats.lookup_hits == 1
        assert stats.mean_lookup_latency_ms == pytest.approx(2.0)
        assert stats.lookup_latency_max_ms == pytest.approx(3.0)
        assert stats.lookup_success_rate == pytest.approx(0.5)

    def test_insert_aggregates(self):
        stats = OperationStats()
        stats.record_insert(InsertResult(key=b"a", latency_ms=0.5, flushed=True, flash_writes=4))
        stats.record_insert(InsertResult(key=b"b", latency_ms=1.5))
        assert stats.inserts == 2
        assert stats.flushes == 1
        assert stats.flash_writes == 4
        assert stats.mean_insert_latency_ms == pytest.approx(1.0)

    def test_empty_stats_safe(self):
        stats = OperationStats()
        assert stats.mean_lookup_latency_ms == 0.0
        assert stats.mean_insert_latency_ms == 0.0
        assert stats.lookup_success_rate == 0.0

    def test_samples_not_kept_when_disabled(self):
        stats = OperationStats(keep_samples=False)
        stats.record_lookup(
            LookupResult(key=b"a", value=None, latency_ms=1.0, served_from=ServedFrom.MISSING)
        )
        assert stats.lookup_latencies_ms == []
        assert stats.lookups == 1

    def test_false_positive_reads_accumulate(self):
        stats = OperationStats()
        stats.record_lookup(
            LookupResult(
                key=b"a",
                value=None,
                latency_ms=1.0,
                served_from=ServedFrom.MISSING,
                flash_reads=2,
                false_positive_reads=2,
            )
        )
        assert stats.false_positive_reads == 2
        assert stats.flash_reads == 2
