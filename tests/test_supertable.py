"""Tests for a single super table (buffer + incarnations + Bloom filters)."""


from repro.core import (
    LRUEviction,
    MemoryCostModel,
    PriorityBasedEviction,
    ServedFrom,
    UpdateBasedEviction,
    WholeDeviceLogStore,
)
from repro.core.supertable import SuperTable
from repro.flashsim import SSD, SimulationClock


def _super_table(
    buffer_capacity=16,
    max_incarnations=4,
    eviction_policy=None,
    use_bloom_filters=True,
    use_bit_slicing=True,
):
    clock = SimulationClock()
    ssd = SSD(clock=clock)
    store = WholeDeviceLogStore(ssd)
    return SuperTable(
        table_id=0,
        store=store,
        clock=clock,
        buffer_capacity_items=buffer_capacity,
        buffer_slots=buffer_capacity * 2,
        max_incarnations=max_incarnations,
        page_size=ssd.geometry.page_size,
        pages_per_incarnation=2,
        bloom_bits=buffer_capacity * 16,
        memory_cost=MemoryCostModel(),
        eviction_policy=eviction_policy,
        use_bloom_filters=use_bloom_filters,
        use_bit_slicing=use_bit_slicing,
    )


def _fill(table, count, prefix=b"key"):
    keys = []
    for i in range(count):
        key = b"%s-%d" % (prefix, i)
        table.insert(key, b"value-%d" % i)
        keys.append(key)
    return keys


class TestInsertAndLookup:
    def test_insert_then_lookup_from_buffer(self):
        table = _super_table()
        table.insert(b"key", b"value")
        result = table.lookup(b"key")
        assert result.value == b"value"
        assert result.served_from is ServedFrom.BUFFER
        assert result.flash_reads == 0

    def test_lookup_missing_key(self):
        table = _super_table()
        result = table.lookup(b"missing")
        assert result.value is None
        assert result.served_from is ServedFrom.MISSING

    def test_flush_happens_when_buffer_fills(self):
        table = _super_table(buffer_capacity=8)
        _fill(table, 20)
        assert table.flush_count >= 2
        assert table.incarnation_count >= 2

    def test_lookup_from_incarnation_after_flush(self):
        table = _super_table(buffer_capacity=8)
        keys = _fill(table, 9)  # forces one flush of the first 8 keys
        result = table.lookup(keys[0])
        assert result.value == b"value-0"
        assert result.served_from is ServedFrom.INCARNATION
        assert result.flash_reads >= 1

    def test_all_recent_keys_retained(self):
        table = _super_table(buffer_capacity=8, max_incarnations=4)
        keys = _fill(table, 32)  # exactly within retention (4 incarnations + buffer)
        for key in keys[-32:]:
            assert table.lookup(key).found

    def test_oldest_keys_evicted_fifo(self):
        table = _super_table(buffer_capacity=8, max_incarnations=2)
        keys = _fill(table, 64)
        assert not table.lookup(keys[0]).found
        assert table.lookup(keys[-1]).found
        assert table.eviction_count > 0

    def test_insert_reports_flush_latency(self):
        table = _super_table(buffer_capacity=4)
        results = [table.insert(b"k%d" % i, b"v") for i in range(6)]
        flushed = [r for r in results if r.flushed]
        assert flushed
        assert all(r.flush_latency_ms > 0 for r in flushed)
        assert all(r.latency_ms >= r.flush_latency_ms for r in flushed)

    def test_incarnation_count_capped(self):
        table = _super_table(buffer_capacity=4, max_incarnations=3)
        _fill(table, 100)
        assert table.incarnation_count <= 3


class TestLazyUpdateAndDelete:
    def test_update_in_buffer_is_in_place(self):
        table = _super_table()
        table.insert(b"key", b"v1")
        table.update(b"key", b"v2")
        assert table.lookup(b"key").value == b"v2"
        assert len(table.buffer) == 1

    def test_update_after_flush_shadows_old_value(self):
        table = _super_table(buffer_capacity=8)
        table.insert(b"key", b"v1")
        _fill(table, 10, prefix=b"filler")  # push the key to flash
        table.update(b"key", b"v2")
        assert table.lookup(b"key").value == b"v2"

    def test_newest_value_wins_across_incarnations(self):
        table = _super_table(buffer_capacity=4)
        table.insert(b"key", b"v1")
        _fill(table, 5, prefix=b"fill-a")
        table.insert(b"key", b"v2")
        _fill(table, 5, prefix=b"fill-b")
        table.insert(b"key", b"v3")
        _fill(table, 5, prefix=b"fill-c")
        assert table.lookup(b"key").value == b"v3"

    def test_delete_from_buffer(self):
        table = _super_table()
        table.insert(b"key", b"value")
        result = table.delete(b"key")
        assert result.removed_from_buffer is True
        assert not table.lookup(b"key").found

    def test_delete_of_flushed_key_uses_delete_list(self):
        table = _super_table(buffer_capacity=8)
        table.insert(b"key", b"value")
        _fill(table, 10, prefix=b"filler")
        table.delete(b"key")
        lookup = table.lookup(b"key")
        assert not lookup.found
        assert lookup.served_from is ServedFrom.DELETED
        assert table.delete_list_size >= 1

    def test_reinsert_after_delete_revives_key(self):
        table = _super_table(buffer_capacity=8)
        table.insert(b"key", b"v1")
        _fill(table, 10, prefix=b"filler")
        table.delete(b"key")
        table.insert(b"key", b"v2")
        assert table.lookup(b"key").value == b"v2"


class TestBloomFilterBehaviour:
    def test_miss_usually_needs_no_flash_reads(self):
        table = _super_table(buffer_capacity=8)
        _fill(table, 40)
        misses = [table.lookup(b"absent-%d" % i) for i in range(200)]
        no_io = sum(1 for result in misses if result.flash_reads == 0)
        assert no_io / len(misses) > 0.95

    def test_without_bloom_filters_misses_scan_incarnations(self):
        table = _super_table(buffer_capacity=8, max_incarnations=4, use_bloom_filters=False)
        _fill(table, 40)
        result = table.lookup(b"absent")
        assert result.flash_reads >= table.incarnation_count

    def test_bit_sliced_and_naive_agree(self):
        sliced = _super_table(buffer_capacity=8, use_bit_slicing=True)
        naive = _super_table(buffer_capacity=8, use_bit_slicing=False)
        for i in range(40):
            key, value = b"key-%d" % i, b"value-%d" % i
            sliced.insert(key, value)
            naive.insert(key, value)
        for i in range(40):
            key = b"key-%d" % i
            assert sliced.lookup(key).value == naive.lookup(key).value
        for i in range(40):
            key = b"no-%d" % i
            assert sliced.lookup(key).found == naive.lookup(key).found


class TestEvictionPolicies:
    def test_lru_reinserts_on_flash_hit(self):
        table = _super_table(buffer_capacity=8, eviction_policy=LRUEviction())
        table.insert(b"hot", b"value")
        _fill(table, 10, prefix=b"filler")
        assert table.buffer.get(b"hot") is None  # pushed to flash
        table.lookup(b"hot")
        assert table.buffer.get(b"hot") == b"value"  # re-inserted on use
        assert table.reinsert_latency_total_ms > 0

    def test_update_based_eviction_retains_live_items(self):
        table = _super_table(
            buffer_capacity=8, max_incarnations=2, eviction_policy=UpdateBasedEviction()
        )
        keys = _fill(table, 8)  # first incarnation
        # Update half of them so the originals become stale.
        for key in keys[:4]:
            table.update(key, b"new")
        # Keep inserting to force eviction of the first incarnation.
        _fill(table, 40, prefix=b"more")
        # Un-updated keys from the first incarnation should have been retained
        # (re-inserted), so they are still found.
        found = sum(1 for key in keys[4:] if table.lookup(key).found)
        assert found >= 3

    def test_priority_eviction_cascades_are_recorded(self):
        policy = PriorityBasedEviction(priority_fn=lambda k, v: 1.0, threshold=0.0)
        table = _super_table(buffer_capacity=8, max_incarnations=2, eviction_policy=policy)
        _fill(table, 80)
        histogram = table.cascade_histogram
        assert sum(histogram.values()) == table.flush_count
        # Retaining everything forces cascaded evictions (more than one
        # incarnation tried on some flushes).
        assert any(tried > 1 for tried in histogram)

    def test_snapshot_items_reflects_live_state(self):
        table = _super_table(buffer_capacity=8)
        keys = _fill(table, 20)
        table.delete(keys[-1])
        snapshot = table.snapshot_items()
        assert keys[0] in snapshot or table.incarnation_count < 3  # retained unless evicted
        assert keys[-1] not in snapshot
