"""Tests for I/O statistics and the percentile helper."""

import pytest

from repro.flashsim import IOEvent, IOKind, IOStats
from repro.flashsim.stats import percentile


def _event(kind=IOKind.READ, nbytes=512, latency=1.0, sequential=False, ts=0.0):
    return IOEvent(kind=kind, nbytes=nbytes, latency_ms=latency, sequential=sequential, timestamp_ms=ts)


class TestIOStats:
    def test_counts_by_kind(self):
        stats = IOStats()
        stats.record(_event(IOKind.READ))
        stats.record(_event(IOKind.READ))
        stats.record(_event(IOKind.WRITE))
        assert stats.count(IOKind.READ) == 2
        assert stats.count(IOKind.WRITE) == 1
        assert stats.count(IOKind.ERASE) == 0
        assert stats.count() == 3

    def test_bytes_moved(self):
        stats = IOStats()
        stats.record(_event(nbytes=100))
        stats.record(_event(nbytes=200))
        assert stats.bytes_moved(IOKind.READ) == 300
        assert stats.bytes_moved() == 300

    def test_latency_aggregates(self):
        stats = IOStats()
        stats.record(_event(latency=1.0))
        stats.record(_event(latency=3.0))
        assert stats.total_latency_ms(IOKind.READ) == pytest.approx(4.0)
        assert stats.mean_latency_ms(IOKind.READ) == pytest.approx(2.0)
        assert stats.max_latency_ms(IOKind.READ) == pytest.approx(3.0)

    def test_mean_latency_of_unused_kind_is_zero(self):
        assert IOStats().mean_latency_ms(IOKind.ERASE) == 0.0

    def test_events_not_kept_by_default(self):
        stats = IOStats()
        stats.record(_event())
        assert stats.events == []

    def test_events_kept_when_requested(self):
        stats = IOStats(keep_events=True)
        stats.record(_event())
        assert len(stats.events) == 1

    def test_sequential_counts(self):
        stats = IOStats()
        stats.record(_event(sequential=True))
        stats.record(_event(sequential=False))
        assert stats.sequential_counts[IOKind.READ] == 1

    def test_reset(self):
        stats = IOStats(keep_events=True)
        stats.record(_event())
        stats.reset()
        assert stats.count() == 0
        assert stats.events == []

    def test_snapshot_keys(self):
        stats = IOStats()
        stats.record(_event())
        snap = stats.snapshot()
        assert snap["read_ops"] == 1.0
        assert snap["total_ops"] == 1.0
        assert "write_mean_ms" in snap


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolates(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0.0) == 1
        assert percentile(data, 1.0) == 9

    def test_single_value(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
