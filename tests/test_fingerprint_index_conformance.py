"""Conformance suite for the :class:`repro.wanopt.engine.FingerprintIndex` protocol.

The compression engine accepts *anything* satisfying the protocol — a single
CLAM, the BDB-style external hash baseline, or a sharded, replicated
:class:`~repro.service.cluster.ClusterService`.  These tests hold every
implementation to the same contract, so the protocol methods are genuinely
exercised rather than living as unexamined ``Protocol`` stubs:

* structural conformance (``isinstance`` against the runtime-checkable
  protocol);
* lookup/insert round trips with value fidelity;
* batched results equal to sequential calls, in submission order, for both
  the loop fallbacks (CLAM, BDB) and the cluster's true shard fanout.
"""

from __future__ import annotations

import pytest

from repro.baselines import ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.flashsim import SSD, SimulationClock
from repro.service import ClusterService
from repro.wanopt import FingerprintIndex
from repro.workloads.keygen import fingerprint_for

IMPLEMENTATIONS = ("clam", "bdb", "cluster", "replicated-cluster")


def build_index(kind: str) -> FingerprintIndex:
    config = CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64)
    if kind == "clam":
        return CLAM(config, storage=SSD(clock=SimulationClock()))
    if kind == "bdb":
        return ExternalHashIndex(SSD(clock=SimulationClock()))
    if kind == "cluster":
        return ClusterService(num_shards=3, config=config)
    if kind == "replicated-cluster":
        return ClusterService(num_shards=3, config=config, replication_factor=2)
    raise AssertionError(kind)


@pytest.fixture(params=IMPLEMENTATIONS)
def index(request) -> FingerprintIndex:
    return build_index(request.param)


def keys_for(count: int, *, start: int = 0) -> list:
    return [
        fingerprint_for(identifier, namespace=b"conformance")
        for identifier in range(start, start + count)
    ]


class TestProtocolConformance:
    def test_satisfies_runtime_checkable_protocol(self, index):
        assert isinstance(index, FingerprintIndex)

    def test_insert_then_lookup_round_trip(self, index):
        key = keys_for(1)[0]
        assert not index.lookup(key).found
        index.insert(key, b"addr-0001")
        result = index.lookup(key)
        assert result.found
        assert result.value == b"addr-0001"

    def test_insert_batch_then_lookup_batch(self, index):
        keys = keys_for(24)
        values = [b"value-%03d" % i for i in range(len(keys))]
        insert_results = index.insert_batch(list(zip(keys, values)))
        assert len(insert_results) == len(keys)
        lookup_results = index.lookup_batch(keys)
        assert len(lookup_results) == len(keys)
        # Submission order is preserved and every value survives verbatim.
        for value, result in zip(values, lookup_results):
            assert result.found
            assert result.value == value

    def test_lookup_batch_misses_report_not_found(self, index):
        present = keys_for(4)
        absent = keys_for(4, start=1_000)
        index.insert_batch([(key, b"v") for key in present])
        results = index.lookup_batch(present + absent)
        assert [r.found for r in results] == [True] * 4 + [False] * 4


@pytest.mark.parametrize("kind", IMPLEMENTATIONS)
def test_batched_results_match_sequential(kind):
    """Batch found/value outcomes must be exactly the sequential ones."""
    batched = build_index(kind)
    sequential = build_index(kind)
    keys = keys_for(32)
    items = [(key, b"payload-%02d" % i) for i, key in enumerate(keys)]

    for key, value in items:
        sequential.insert(key, value)
    batched.insert_batch(items)

    probe = keys + keys_for(8, start=500)
    sequential_results = [sequential.lookup(key) for key in probe]
    batched_results = batched.lookup_batch(probe)
    assert [r.found for r in batched_results] == [r.found for r in sequential_results]
    assert [r.value for r in batched_results] == [r.value for r in sequential_results]


def test_cluster_batches_fan_out_across_shards():
    """The cluster implementation must really shard the batch, not loop."""
    cluster = build_index("cluster")
    keys = keys_for(64)
    cluster.insert_batch([(key, b"v") for key in keys])
    assert cluster.last_batch is not None
    assert cluster.last_batch.shards_touched > 1
    # Makespan across parallel shards is below the serial sum of latencies.
    serial_ms = sum(stats.total_ms for stats in cluster.last_batch.per_shard.values())
    assert cluster.last_batch.makespan_ms <= serial_ms
