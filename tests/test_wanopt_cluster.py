"""Multi-branch WAN optimization over the replicated cluster.

Covers the contracts the new :mod:`repro.wanopt.topology` layer must hold:

* **Equivalence** — compression decisions (compressed bytes, chunks matched,
  per-object outcomes) are bit-identical whether the fingerprint index is a
  single CLAM or a 1-shard RF=1 :class:`ClusterService`, and whether the
  engine runs sequentially or with per-object batched round trips.
* **Monotonicity** — sharing one cluster index across branches never lowers
  any branch's dedup hit rate relative to private per-branch indexes.
* **Fault tolerance** — a shard killed mid-stream at RF=2 is failed over
  with availability 1.0 and byte-exact reconstruction of every object (the
  ``bench_failover`` contract: nothing lost, nothing silently corrupted);
  at RF=1 the optimizer degrades to pass-through, which costs compression
  but never correctness.
"""

from __future__ import annotations

import pytest

from repro.core import CLAM, CLAMConfig
from repro.core.errors import ConfigurationError
from repro.service import ClusterService, FailureEvent
from repro.wanopt import (
    BranchTraceGenerator,
    CompressionEngine,
    MultiBranchThroughputTest,
    MultiBranchTopology,
    SyntheticTraceGenerator,
    WANOptimizer,
    Link,
    build_payload_objects,
)
from repro.flashsim import SSD, SimulationClock


def small_config() -> CLAMConfig:
    return CLAMConfig.scaled(num_super_tables=8, buffer_capacity_items=128)


def compression_signature(result):
    """The decision-relevant fields of one object's compression outcome."""
    return (
        result.object_id,
        result.original_bytes,
        result.compressed_bytes,
        result.chunks_total,
        result.chunks_matched,
        result.matched_flags,
    )


class TestSingleClamClusterEquivalence:
    def _trace(self):
        return SyntheticTraceGenerator(
            redundancy=0.5, num_objects=20, mean_object_size=96 * 1024, seed=29
        ).generate()

    def test_batched_results_bit_identical_across_index_kinds(self):
        objects = self._trace()
        clam_engine = CompressionEngine(
            index=CLAM(small_config(), storage=SSD(clock=SimulationClock()))
        )
        cluster_engine = CompressionEngine(
            index=ClusterService(num_shards=1, config=small_config(), replication_factor=1)
        )
        for obj in objects:
            clam_result = clam_engine.process_object_batched(obj)
            cluster_result = cluster_engine.process_object_batched(obj)
            assert compression_signature(clam_result) == compression_signature(cluster_result)
        assert clam_engine.total_compressed_bytes == cluster_engine.total_compressed_bytes

    def test_sequential_and_batched_decisions_identical(self):
        objects = self._trace()
        sequential = CompressionEngine(
            index=CLAM(small_config(), storage=SSD(clock=SimulationClock()))
        )
        batched = CompressionEngine(
            index=CLAM(small_config(), storage=SSD(clock=SimulationClock()))
        )
        for obj in objects:
            seq_result = sequential.process_object(obj)
            bat_result = batched.process_object_batched(obj)
            assert compression_signature(seq_result) == compression_signature(bat_result)

    def test_cluster_sequential_matches_cluster_batched(self):
        objects = self._trace()
        sequential = CompressionEngine(
            index=ClusterService(num_shards=1, config=small_config())
        )
        batched = CompressionEngine(
            index=ClusterService(num_shards=1, config=small_config())
        )
        for obj in objects:
            seq_result = sequential.process_object(obj)
            bat_result = batched.process_object_batched(obj)
            assert compression_signature(seq_result) == compression_signature(bat_result)


class TestCrossBranchDedupMonotonicity:
    def test_shared_index_never_lowers_any_branchs_hit_rate(self):
        generator = BranchTraceGenerator(
            num_branches=3,
            objects_per_branch=8,
            mean_object_size=96 * 1024,
            shared_fraction=0.35,
            local_redundancy=0.2,
            shared_pool_size=150,
            seed=17,
        )
        streams = generator.generate()

        # Private world: every branch runs its own single-CLAM index.
        private_matched = []
        for stream in streams:
            engine = CompressionEngine(
                index=CLAM(small_config(), storage=SSD(clock=SimulationClock()))
            )
            for obj in stream:
                engine.process_object_batched(obj)
            private_matched.append(sum(r.chunks_matched for r in engine.results))

        # Shared world: the same streams over one cluster index.
        topology = MultiBranchTopology(
            num_branches=3,
            num_shards=2,
            replication_factor=1,
            config=small_config(),
            with_content_cache=False,
        )
        result = MultiBranchThroughputTest(topology).run(streams)
        shared_matched = [branch.chunks_matched for branch in result.branches]

        for private, shared in zip(private_matched, shared_matched):
            assert shared >= private
        assert sum(shared_matched) > sum(private_matched)
        assert result.cross_branch_matched > 0
        assert result.dedup_hit_rate >= result.cross_branch_hit_rate

    def test_cross_branch_hits_require_shared_content(self):
        streams = BranchTraceGenerator(
            num_branches=2,
            objects_per_branch=5,
            mean_object_size=64 * 1024,
            shared_fraction=0.0,
            local_redundancy=0.3,
            seed=5,
        ).generate()
        topology = MultiBranchTopology(
            num_branches=2, num_shards=2, replication_factor=1, config=small_config(),
            with_content_cache=False,
        )
        result = MultiBranchThroughputTest(topology).run(streams)
        assert result.cross_branch_matched == 0
        assert result.chunks_matched > 0  # intra-branch dedup still works


class TestFaultInjection:
    def _run(self, replication_factor: int, schedule):
        streams = BranchTraceGenerator(
            num_branches=2,
            objects_per_branch=10,
            mean_object_size=96 * 1024,
            shared_fraction=0.3,
            local_redundancy=0.2,
            shared_pool_size=200,
            seed=23,
        ).generate()
        topology = MultiBranchTopology(
            num_branches=2,
            num_shards=3,
            replication_factor=replication_factor,
            config=small_config(),
            with_content_cache=False,
        )
        result = MultiBranchThroughputTest(topology).run(streams, schedule=schedule)
        return topology, result

    def test_rf2_shard_kill_mid_stream_keeps_availability_and_bytes(self):
        """The bench_failover contract, through the WAN optimizer path."""
        topology, result = self._run(
            replication_factor=2,
            schedule=[
                FailureEvent(at_request=6, action="fail", shard_id="shard-1"),
                FailureEvent(at_request=14, action="recover"),
            ],
        )
        # Every object was deduplicated (requests failed over, none degraded).
        assert result.availability == 1.0
        assert result.objects_pass_through == 0
        # No silent chunk loss: every reference resolved on the far side.
        assert result.chunks_lost == 0
        assert result.reconstruction_exact
        # The kill really happened and recovery really ran.
        assert "shard-1" not in topology.cluster.shard_ids
        assert len(result.recovery_reports) == 1
        report = result.recovery_reports[0]
        assert report.failed_shards == ("shard-1",)
        assert report.keys_lost == 0
        assert report.keys_re_replicated > 0

    def test_rf1_shard_kill_degrades_to_pass_through_not_corruption(self):
        topology, result = self._run(
            replication_factor=1,
            schedule=[FailureEvent(at_request=6, action="fail", shard_id="shard-1")],
        )
        # Objects whose fingerprints route to the dead shard degrade.
        assert result.objects_pass_through > 0
        assert result.availability < 1.0
        # Pass-through always reconstructs: degraded, never corrupted.
        assert result.chunks_lost == 0
        assert result.reconstruction_exact
        assert result.aggregate_bandwidth_improvement > 0

    def test_heal_restores_compression(self):
        topology, result = self._run(
            replication_factor=1,
            schedule=[
                FailureEvent(at_request=4, action="fail", shard_id="shard-0"),
                FailureEvent(at_request=8, action="heal", shard_id="shard-0"),
            ],
        )
        assert result.objects_pass_through > 0
        # After the heal the optimizer compresses again: the tail of the run
        # cannot be all pass-through.
        assert result.objects_compressed > 4
        assert result.reconstruction_exact


class _CrashBetweenRoundTrips:
    """Index wrapper crash-stopping a shard between an object's two round trips.

    Models the sharpest mid-object failure: the lookup round trip succeeds,
    the shard dies, and the insert round trip fails *after* the surviving
    shard's sub-batch applied — leaving fingerprints in the index whose
    object degraded to pass-through.
    """

    def __init__(self, cluster, victim: str) -> None:
        self.cluster = cluster
        self.victim = victim
        self.armed = False

    def lookup(self, key):
        return self.cluster.lookup(key)

    def insert(self, key, value):
        return self.cluster.insert(key, value)

    def lookup_batch(self, keys):
        results = self.cluster.lookup_batch(keys)
        if self.armed:
            self.cluster.fail_shard(self.victim)
            self.armed = False
        return results

    def insert_batch(self, items):
        return self.cluster.insert_batch(items)

    @property
    def last_batch(self):
        return self.cluster.last_batch


class TestMidObjectPartialInsertFailure:
    def test_partial_insert_before_pass_through_cannot_dangle(self):
        """A shard killed mid-object (between round trips) at RF=1 leaves the
        surviving shard's inserts in the index while the object itself
        degrades to pass-through; later matches against those fingerprints
        must still resolve because the pass-through literals were harvested."""
        from repro.wanopt.fingerprint import Chunk, fingerprint_bytes

        cluster = ClusterService(num_shards=2, config=small_config(), replication_factor=1)
        wrapper = _CrashBetweenRoundTrips(cluster, victim="shard-1")
        topology = MultiBranchTopology(num_branches=1, index=wrapper)
        branch = topology.branches[0]

        def chunk_on(shard_id: str, salt: int) -> Chunk:
            nonce = salt
            while True:
                fingerprint = fingerprint_bytes(b"dangle-%d" % nonce)
                if cluster.shard_for(fingerprint) == shard_id:
                    return Chunk(fingerprint=fingerprint, size=4096)
                nonce += 997

        survivor_chunk = chunk_on("shard-0", 1)
        victim_chunk = chunk_on("shard-1", 2)

        from repro.wanopt.traces import TraceObject

        # Object 0: lookup round trip succeeds, then shard-1 crashes; the
        # insert batch applies survivor_chunk on shard-0 and fails on the
        # victim -> pass-through with fingerprints left behind.
        wrapper.armed = True
        first = topology.process_branch_object(
            branch, TraceObject(object_id=0, chunks=(survivor_chunk, victim_chunk))
        )
        assert first.pass_through
        assert cluster.lookup(survivor_chunk.fingerprint).found  # the partial insert

        # Object 1 repeats the surviving chunk: it matches against the
        # partially-applied insert and the reference must resolve.
        second = topology.process_branch_object(
            branch, TraceObject(object_id=1, chunks=(survivor_chunk,))
        )
        assert not second.pass_through
        assert second.result.chunks_matched == 1
        assert second.chunks_lost == 0
        assert second.reconstructed_exactly
        assert topology.receiver.chunks_lost == 0
        # Attribution: the match is intra-branch (this branch uploaded the
        # bytes in its pass-through), not a phantom cross-branch hit.
        assert second.cross_branch_matched == 0


class TestByteExactReconstruction:
    def test_real_payload_objects_reassemble_byte_exactly(self):
        objects = build_payload_objects(
            num_objects=6, object_size=32 * 1024, redundancy=0.5, seed=31
        )
        streams = [objects[0::2], objects[1::2]]
        topology = MultiBranchTopology(
            num_branches=2,
            num_shards=2,
            replication_factor=2,
            config=small_config(),
        )
        result = MultiBranchThroughputTest(topology).run(
            streams,
            schedule=[FailureEvent(at_request=3, action="fail", shard_id="shard-0")],
        )
        # Payload-bearing chunks force the receiver to diff actual bytes.
        assert result.reconstruction_exact
        assert result.chunks_lost == 0
        assert result.availability == 1.0
        assert topology.receiver.objects_checked == len(objects)


class TestConnectionManagerFeeds:
    def test_per_branch_connection_managers_with_disjoint_object_ids(self):
        """Real byte streams through per-branch connection managers: each CM
        gets a disjoint ``object_id_start`` range, the shared content dedups
        across branches, and everything reassembles byte-exactly."""
        import random

        from repro.wanopt import ConnectionManager, RabinChunker

        topology = MultiBranchTopology(
            num_branches=2, num_shards=2, replication_factor=2, config=small_config()
        )
        rng = random.Random(3)
        shared_prefix = rng.randbytes(24 * 1024)  # content every branch carries
        streams = []
        for branch_index, branch in enumerate(topology.branches):
            manager = ConnectionManager(
                branch.clock,
                chunker=RabinChunker(average_size=1024),
                object_id_start=branch_index * 1_000_000,
            )
            objects = []
            for connection in range(3):
                payload = shared_prefix + rng.randbytes(8 * 1024)
                manager.receive((branch_index, connection), payload)
                objects.extend(manager.flush((branch_index, connection)))
            streams.append(objects)

        result = MultiBranchThroughputTest(topology).run(streams)
        object_ids = [obj.object_id for stream in streams for obj in stream]
        assert len(set(object_ids)) == len(object_ids)
        assert all(obj.object_id >= 1_000_000 for obj in streams[1])
        assert all(obj.object_id < 1_000_000 for obj in streams[0])
        # The shared prefix dedups across branches, byte-exactly.
        assert result.cross_branch_matched > 0
        assert result.reconstruction_exact
        assert result.chunks_lost == 0


class TestTopologyHarness:
    def test_single_branch_single_shard_matches_classic_optimizer(self):
        """Aggregate improvement degenerates to the single-box Scenario 1."""
        objects = SyntheticTraceGenerator(
            redundancy=0.5, num_objects=15, mean_object_size=96 * 1024, seed=13
        ).generate()

        clock = SimulationClock()
        clam = CLAM(small_config(), storage=SSD(clock=clock))
        classic = WANOptimizer(
            engine=CompressionEngine(index=clam, fingerprint_cost_ms=0.002),
            link=Link(bandwidth_mbps=100.0, clock=clock),
            clock=clock,
        )
        classic_result = classic.run_throughput_test(objects)

        topology = MultiBranchTopology(
            num_branches=1,
            link_mbps=100.0,
            num_shards=1,
            replication_factor=1,
            config=small_config(),
            with_content_cache=False,
        )
        result = MultiBranchThroughputTest(topology).run([objects])
        assert result.aggregate_bandwidth_improvement == pytest.approx(
            classic_result.effective_bandwidth_improvement, rel=0.1
        )

    def test_stream_count_must_match_branches(self):
        topology = MultiBranchTopology(
            num_branches=2, num_shards=1, replication_factor=1, config=small_config()
        )
        with pytest.raises(ValueError):
            MultiBranchThroughputTest(topology).run([[]])

    def test_cluster_accessor_rejects_plain_index(self):
        clam = CLAM(small_config(), storage=SSD(clock=SimulationClock()))
        topology = MultiBranchTopology(num_branches=1, index=clam)
        with pytest.raises(ConfigurationError):
            topology.cluster

    def test_run_is_deterministic(self):
        def once():
            streams = BranchTraceGenerator(
                num_branches=2, objects_per_branch=6, mean_object_size=64 * 1024, seed=9
            ).generate()
            topology = MultiBranchTopology(
                num_branches=2, num_shards=2, replication_factor=2, config=small_config(),
                with_content_cache=False,
            )
            result = MultiBranchThroughputTest(topology).run(streams)
            return (
                result.chunks_matched,
                result.cross_branch_matched,
                [b.total_compressed_bytes for b in result.branches],
                [b.time_with_optimizer_ms for b in result.branches],
            )

        assert once() == once()


class TestRealPayloadMode:
    """Real bytes through the whole pipeline: chunked, hashed, deduplicated."""

    TRACE = dict(
        num_branches=2,
        objects_per_branch=5,
        mean_object_size=64 * 1024,
        mean_chunk_size=8 * 1024,
        shared_fraction=0.35,
        local_redundancy=0.2,
        shared_pool_size=60,
        seed=47,
    )

    def _real_streams(self, **overrides):
        return BranchTraceGenerator(
            real_payloads=True, **{**self.TRACE, **overrides}
        ).generate()

    def test_real_streams_are_deterministic_and_carry_zero_copy_payloads(self):
        first, second = self._real_streams(), self._real_streams()
        # Zero-copy checks first: comparing chunks (or touching `payload`)
        # materialises and caches owned bytes, by design.
        for stream in first:
            for obj in stream:
                for chunk in obj.chunks:
                    assert chunk.raw is not None
                    assert isinstance(chunk.raw, memoryview)
                    assert len(chunk.raw) == chunk.size
        for stream_a, stream_b in zip(first, second):
            for obj_a, obj_b in zip(stream_a, stream_b):
                assert obj_a.chunks == obj_b.chunks

    def test_object_ids_match_descriptor_mode(self):
        real = self._real_streams()
        descriptors = BranchTraceGenerator(**self.TRACE).generate()
        assert [[o.object_id for o in s] for s in real] == [
            [o.object_id for o in s] for s in descriptors
        ]

    def test_shared_pool_bytes_identical_across_branches(self):
        """A cross-branch match must reference bit-identical content."""
        streams = self._real_streams()
        seen: dict = {}
        duplicates = 0
        for stream in streams:
            for obj in stream:
                for chunk in obj.chunks:
                    payload = bytes(chunk.raw)
                    if chunk.fingerprint in seen:
                        duplicates += 1
                        assert seen[chunk.fingerprint] == payload
                    else:
                        seen[chunk.fingerprint] = payload
        assert duplicates > 0  # the trace really does repeat content

    def test_topology_reconstructs_real_bytes_exactly(self):
        # A small, heavily shared pool makes cross-branch pool-draw overlap
        # (and therefore cross-branch matches) certain at this trace size.
        streams = self._real_streams(shared_pool_size=15, shared_fraction=0.45)
        topology = MultiBranchTopology(
            num_branches=2,
            num_shards=2,
            replication_factor=2,
            config=small_config(),
            with_content_cache=False,
        )
        result = MultiBranchThroughputTest(topology).run(streams)
        assert result.objects_reconstructed_exactly == result.objects_total
        assert result.chunks_lost == 0
        assert result.chunks_matched > 0
        assert result.cross_branch_matched > 0

    def test_dedup_hit_rate_tracks_descriptor_mode(self):
        """Real-byte hit rates sit slightly below descriptor mode's (chunks
        straddling redundancy-block edges mix repeated and fresh bytes) but
        must stay within noise of them on the same trace shape."""

        def hit_rate(streams):
            topology = MultiBranchTopology(
                num_branches=2,
                num_shards=2,
                replication_factor=1,
                config=small_config(),
                with_content_cache=False,
            )
            return MultiBranchThroughputTest(topology).run(streams).dedup_hit_rate

        real = hit_rate(self._real_streams())
        descriptor = hit_rate(BranchTraceGenerator(**self.TRACE).generate())
        assert descriptor > 0
        assert 0.7 <= real / descriptor <= 1.2, (real, descriptor)

    def test_average_chunk_size_validation(self):
        with pytest.raises(ValueError):
            BranchTraceGenerator(real_payloads=True, average_chunk_size=32, **self.TRACE)
