"""Golden and behavioural tests for the file-backed flash device.

The golden tests freeze the on-disk byte format (file header and per-page
CRC frames): any change to :mod:`repro.flashsim.persistent` that would break
reading existing device files must fail here first.
"""

import os
import struct
import zlib

import pytest

from repro.core.errors import PowerLossError, TornPageError
from repro.flashsim.device import DeviceGeometry
from repro.flashsim.persistent import (
    FILE_HEADER_SIZE,
    FILE_MAGIC,
    PERSISTENT_GEOMETRY,
    FlashLayout,
    FlashPartition,
    PageState,
    PersistentFlashDevice,
)

# Small geometry keeping test files tiny; >= 4 blocks for the default layout.
GEOM = DeviceGeometry(page_size=256, pages_per_block=4, num_blocks=8)
FRAME_HEADER = struct.Struct("<BHI")  # independent copy: freezes the format
FRAME_STRIDE = GEOM.page_size + FRAME_HEADER.size


def frame_offset(page_index):
    return FILE_HEADER_SIZE + page_index * FRAME_STRIDE


def make_device(tmp_path, name="dev.flash", **kwargs):
    return PersistentFlashDevice(tmp_path / name, geometry=GEOM, **kwargs)


class TestGoldenFormat:
    """Byte-level assertions freezing the file format."""

    def test_file_header_layout(self, tmp_path):
        path = tmp_path / "dev.flash"
        with PersistentFlashDevice(path, geometry=GEOM) as dev:
            dev.flush()
        raw = path.read_bytes()
        magic, page_size, pages_per_block, num_blocks = struct.unpack_from("<8sIII", raw, 0)
        assert magic == FILE_MAGIC == b"RFLASH\x01\x00"
        assert (page_size, pages_per_block, num_blocks) == (256, 4, 8)
        # 64 bytes are reserved; the rest of the reservation is zero.
        assert raw[struct.calcsize("<8sIII") : FILE_HEADER_SIZE] == bytes(
            FILE_HEADER_SIZE - struct.calcsize("<8sIII")
        )
        assert len(raw) == FILE_HEADER_SIZE + GEOM.total_pages * FRAME_STRIDE

    def test_written_frame_layout(self, tmp_path):
        path = tmp_path / "dev.flash"
        payload = b"hello, stable format"
        with PersistentFlashDevice(path, geometry=GEOM) as dev:
            dev.write_page(5, payload)
        raw = path.read_bytes()
        offset = frame_offset(5)
        status, length, crc = FRAME_HEADER.unpack_from(raw, offset)
        assert status == 0x01
        assert length == len(payload)
        assert crc == zlib.crc32(payload)
        body = raw[offset + FRAME_HEADER.size : offset + FRAME_STRIDE]
        assert body[: len(payload)] == payload
        assert body[len(payload) :] == bytes(GEOM.page_size - len(payload))

    def test_erased_frame_is_all_zeros(self, tmp_path):
        path = tmp_path / "dev.flash"
        with PersistentFlashDevice(path, geometry=GEOM) as dev:
            assert dev.page_state(3) is PageState.ERASED
            data, _latency = dev.read_page(3)
            assert data == b""
        raw = path.read_bytes()
        offset = frame_offset(3)
        assert raw[offset : offset + FRAME_STRIDE] == bytes(FRAME_STRIDE)

    def test_torn_frame_layout(self, tmp_path):
        path = tmp_path / "dev.flash"
        payload = b"x" * 64
        dev = PersistentFlashDevice(path, geometry=GEOM)
        dev.faults.crash_after_n_ios(1)
        with pytest.raises(PowerLossError):
            dev.write_page(2, payload)
        dev.close()
        raw = path.read_bytes()
        offset = frame_offset(2)
        status, length, crc = FRAME_HEADER.unpack_from(raw, offset)
        assert status == 0x01
        assert length == len(payload) // 2  # half the payload landed
        assert crc == zlib.crc32(payload) ^ 0xA5A5A5A5  # CRC can never verify
        assert raw[offset + FRAME_HEADER.size : offset + FRAME_HEADER.size + length] == (
            payload[:length]
        )

    def test_erased_dirty_frame_layout(self, tmp_path):
        path = tmp_path / "dev.flash"
        dev = PersistentFlashDevice(path, geometry=GEOM)
        dev.write_page(4, b"doomed")
        dev.faults.crash_after_n_ios(1)
        with pytest.raises(PowerLossError):
            dev.erase_block(1)  # pages 4..7
        dev.close()
        raw = path.read_bytes()
        for page in range(4, 8):
            assert raw[frame_offset(page)] == 0x02

    def test_reopen_decodes_frames_written_by_a_previous_process(self, tmp_path):
        """Persistence is the whole point: bytes on disk are sufficient."""
        path = tmp_path / "dev.flash"
        with PersistentFlashDevice(path, geometry=GEOM) as dev:
            dev.write_page(0, b"alpha")
            dev.write_range(8, [b"beta", b"gamma", b"delta"])
        with PersistentFlashDevice(path) as dev:  # geometry from the header
            assert dev.geometry == GEOM
            assert dev.read_page(0)[0] == b"alpha"
            assert dev.read_range(8, 3)[0] == [b"beta", b"gamma", b"delta"]
            assert dev.page_state(1) is PageState.ERASED


class TestPowerLossSemantics:
    def test_torn_page_refuses_reads_until_erased(self, tmp_path):
        dev = make_device(tmp_path)
        dev.faults.crash_after_n_ios(1)
        with pytest.raises(PowerLossError):
            dev.write_page(9, b"payload")
        dev.faults.heal()
        assert dev.page_state(9) is PageState.TORN
        with pytest.raises(TornPageError):
            dev.read_page(9)
        dev.erase_block(dev.block_of(9))
        assert dev.page_state(9) is PageState.ERASED
        dev.close()

    def test_interrupted_erase_poisons_whole_block(self, tmp_path):
        dev = make_device(tmp_path)
        dev.write_page(4, b"a")
        dev.write_page(6, b"b")
        dev.faults.crash_after_n_ios(1)
        with pytest.raises(PowerLossError):
            dev.erase_block(1)
        dev.faults.heal()
        for page in range(4, 8):
            assert dev.page_state(page) is PageState.ERASED_DIRTY
        with pytest.raises(TornPageError):
            dev.read_page(5)
        # Re-erasing completes the interrupted operation.
        dev.erase_block(1)
        assert all(dev.page_state(p) is PageState.ERASED for p in range(4, 8))
        dev.close()

    def test_write_range_cut_leaves_durable_prefix_untouched_suffix(self, tmp_path):
        dev = make_device(tmp_path)
        pages = [b"p%d" % i for i in range(6)]
        dev.faults.crash_after_n_ios(3)  # cut inside the 3rd page of the stream
        with pytest.raises(PowerLossError):
            dev.write_range(8, pages)
        dev.faults.heal()
        assert dev.page_state(8) is PageState.VALID
        assert dev.page_state(9) is PageState.VALID
        assert dev.read_page(8)[0] == b"p0"
        assert dev.read_page(9)[0] == b"p1"
        assert dev.page_state(10) is PageState.TORN
        for page in (11, 12, 13):
            assert dev.page_state(page) is PageState.ERASED
        dev.close()

    def test_power_cut_on_read_kills_device_without_tearing_media(self, tmp_path):
        dev = make_device(tmp_path)
        dev.write_page(0, b"intact")
        dev.faults.crash_after_n_ios(1)
        with pytest.raises(PowerLossError):
            dev.read_page(0)
        assert dev.faults.is_crashed
        dev.faults.heal()
        assert dev.read_page(0)[0] == b"intact"
        dev.close()

    def test_peek_and_page_state_charge_no_simulated_io(self, tmp_path):
        dev = make_device(tmp_path)
        dev.write_page(0, b"data")
        before = dev.stats.count()
        assert dev.page_state(0) is PageState.VALID
        assert dev.peek_page(0) == b"data"
        assert dev.peek_page(1) is None
        assert dev.stats.count() == before
        dev.close()


class TestLifecycle:
    def test_close_is_idempotent_and_context_manager_closes(self, tmp_path):
        with make_device(tmp_path) as dev:
            dev.write_page(0, b"x")
        assert dev.closed
        dev.close()  # second close is a no-op
        assert dev.closed

    def test_geometry_mismatch_rejected_on_reopen(self, tmp_path):
        path = tmp_path / "dev.flash"
        with PersistentFlashDevice(path, geometry=GEOM):
            pass
        other = DeviceGeometry(page_size=512, pages_per_block=4, num_blocks=8)
        with pytest.raises(ValueError, match="geometry mismatch"):
            PersistentFlashDevice(path, geometry=other)

    def test_not_a_flash_file_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a flash device file header....")
        with pytest.raises(ValueError, match="bad magic"):
            PersistentFlashDevice(path)

    def test_no_stray_files_created(self, tmp_path):
        with make_device(tmp_path, name="only.flash") as dev:
            dev.write_page(0, b"x")
            dev.flush()
        assert os.listdir(tmp_path) == ["only.flash"]


class TestFlashLayout:
    def test_default_layout_covers_device_without_overlap(self):
        layout = FlashLayout.default(GEOM)
        assert layout.names == ("superblock", "checkpoint", "log")
        layout.validate(GEOM)
        covered = sum(p.num_blocks for p in layout.partitions)
        assert covered == GEOM.num_blocks
        assert layout.partition("superblock").num_blocks == 1

    def test_default_layout_of_standard_geometry(self):
        layout = FlashLayout.default(PERSISTENT_GEOMETRY)
        checkpoint = layout.partition("checkpoint")
        log = layout.partition("log")
        assert checkpoint.num_blocks >= 2
        assert log.num_blocks > checkpoint.num_blocks

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FlashLayout(
                partitions=(
                    FlashPartition("a", start_block=0, num_blocks=2),
                    FlashPartition("b", start_block=1, num_blocks=2),
                )
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FlashLayout(
                partitions=(
                    FlashPartition("a", start_block=0, num_blocks=1),
                    FlashPartition("a", start_block=1, num_blocks=1),
                )
            )

    def test_partition_beyond_device_rejected(self):
        layout = FlashLayout(
            partitions=(FlashPartition("big", start_block=0, num_blocks=99),)
        )
        with pytest.raises(ValueError, match="only"):
            layout.validate(GEOM)

    def test_unknown_partition_name_raises(self):
        with pytest.raises(KeyError):
            FlashLayout.default(GEOM).partition("nope")

    def test_too_few_blocks_for_default_layout(self):
        tiny = DeviceGeometry(page_size=256, pages_per_block=4, num_blocks=3)
        with pytest.raises(ValueError, match="at least 4 blocks"):
            FlashLayout.default(tiny)
