"""Tests for key generators, workload builders and the workload runner."""

import pytest

from repro.baselines import DRAMHashIndex
from repro.core import CLAM, CLAMConfig
from repro.workloads import (
    OpKind,
    RandomKeyGenerator,
    SequentialKeyGenerator,
    WorkloadRunner,
    WorkloadSpec,
    ZipfKeyGenerator,
    build_lookup_then_insert_workload,
    build_mixed_workload,
    build_update_workload,
    fingerprint_for,
)


class TestKeyGenerators:
    def test_fingerprint_deterministic(self):
        assert fingerprint_for(42) == fingerprint_for(42)
        assert fingerprint_for(42) != fingerprint_for(43)

    def test_fingerprint_length(self):
        assert len(fingerprint_for(1, length=8)) == 8
        with pytest.raises(ValueError):
            fingerprint_for(1, length=0)

    def test_sequential_generator_unique(self):
        generator = SequentialKeyGenerator()
        keys = list(generator.keys(100))
        assert len(set(keys)) == 100

    def test_random_generator_repeats_within_small_space(self):
        generator = RandomKeyGenerator(key_space=10, seed=1)
        keys = list(generator.keys(200))
        assert len(set(keys)) <= 10

    def test_random_generator_reproducible(self):
        first = list(RandomKeyGenerator(key_space=1000, seed=5).keys(50))
        second = list(RandomKeyGenerator(key_space=1000, seed=5).keys(50))
        assert first == second

    def test_zipf_generator_skews_towards_hot_keys(self):
        generator = ZipfKeyGenerator(key_space=1000, skew=1.2, seed=3)
        keys = list(generator.keys(2000))
        counts = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        most_common = max(counts.values())
        assert most_common > len(keys) / 100  # hot key far above uniform share

    def test_invalid_generators_rejected(self):
        with pytest.raises(ValueError):
            RandomKeyGenerator(key_space=0)
        with pytest.raises(ValueError):
            ZipfKeyGenerator(key_space=10, skew=0)


class TestWorkloadSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_keys": 0},
            {"target_lsr": 1.5},
            {"lookup_fraction": -0.1},
            {"update_fraction": 2.0},
            {"value_size": -1},
            {"recency_window": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestWorkloadBuilders:
    def test_lookup_then_insert_alternates(self):
        operations = build_lookup_then_insert_workload(WorkloadSpec(num_keys=100, seed=1))
        assert len(operations) == 200
        kinds = [op.kind for op in operations[:6]]
        assert kinds == [
            OpKind.LOOKUP,
            OpKind.INSERT,
            OpKind.LOOKUP,
            OpKind.INSERT,
            OpKind.LOOKUP,
            OpKind.INSERT,
        ]

    def test_lookup_then_insert_achieves_target_lsr(self):
        """Running the workload against an exact in-memory index must produce a
        hit rate close to the requested LSR."""
        spec = WorkloadSpec(num_keys=4000, target_lsr=0.4, recency_window=1000, seed=2)
        operations = build_lookup_then_insert_workload(spec)
        report = WorkloadRunner(DRAMHashIndex()).run(operations)
        assert report.lookup_success_rate == pytest.approx(0.4, abs=0.05)

    def test_zero_lsr_means_all_misses(self):
        spec = WorkloadSpec(num_keys=500, target_lsr=0.0, seed=3)
        operations = build_lookup_then_insert_workload(spec)
        report = WorkloadRunner(DRAMHashIndex()).run(operations)
        assert report.lookup_success_rate == 0.0

    def test_workloads_deterministic_given_seed(self):
        spec = WorkloadSpec(num_keys=100, seed=9)
        assert build_lookup_then_insert_workload(spec) == build_lookup_then_insert_workload(spec)

    def test_mixed_workload_fraction(self):
        spec = WorkloadSpec(num_keys=4000, lookup_fraction=0.7, seed=4)
        operations = build_mixed_workload(spec)
        lookups = sum(1 for op in operations if op.kind is OpKind.LOOKUP)
        assert lookups / len(operations) == pytest.approx(0.7, abs=0.05)

    def test_mixed_workload_pure_inserts(self):
        spec = WorkloadSpec(num_keys=200, lookup_fraction=0.0, seed=4)
        operations = build_mixed_workload(spec)
        assert all(op.kind is OpKind.INSERT for op in operations)

    def test_update_workload_contains_updates(self):
        spec = WorkloadSpec(num_keys=2000, update_fraction=0.4, lookup_fraction=0.5, seed=5)
        operations = build_update_workload(spec)
        updates = sum(1 for op in operations if op.kind is OpKind.UPDATE)
        inserts = sum(1 for op in operations if op.kind is OpKind.INSERT)
        assert updates > 0
        assert updates / (updates + inserts) == pytest.approx(0.4, abs=0.07)

    def test_update_workload_can_contain_deletes(self):
        spec = WorkloadSpec(
            num_keys=2000, update_fraction=0.5, delete_fraction=0.5, lookup_fraction=0.0, seed=6
        )
        operations = build_update_workload(spec)
        assert any(op.kind is OpKind.DELETE for op in operations)


class TestWorkloadRunner:
    def test_counts_and_latencies_recorded(self):
        spec = WorkloadSpec(num_keys=200, target_lsr=0.5, seed=7)
        operations = build_lookup_then_insert_workload(spec)
        clam = CLAM(CLAMConfig.scaled(num_super_tables=2, buffer_capacity_items=32), storage="intel-ssd")
        report = WorkloadRunner(clam).run(operations)
        assert report.operations == len(operations)
        assert report.lookups == 200
        assert report.inserts == 200
        assert len(report.lookup_latencies_ms) == 200
        assert report.simulated_duration_ms > 0
        assert report.throughput_ops_per_second > 0
        assert report.mean_latency_per_operation_ms > 0

    def test_max_operations_limit(self):
        operations = build_lookup_then_insert_workload(WorkloadSpec(num_keys=100, seed=8))
        report = WorkloadRunner(DRAMHashIndex()).run(operations, max_operations=50)
        assert report.operations == 50

    def test_flash_read_histogram_fractions_sum_to_one(self):
        spec = WorkloadSpec(num_keys=500, target_lsr=0.4, seed=9)
        operations = build_lookup_then_insert_workload(spec)
        clam = CLAM(CLAMConfig.scaled(num_super_tables=2, buffer_capacity_items=32), storage="intel-ssd")
        report = WorkloadRunner(clam).run(operations)
        histogram = report.flash_reads_histogram()
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_summaries_available(self):
        operations = build_lookup_then_insert_workload(WorkloadSpec(num_keys=100, seed=10))
        report = WorkloadRunner(DRAMHashIndex()).run(operations)
        assert report.lookup_summary().count == 100
        assert report.insert_summary().count == 100


class TestRunnerHooks:
    """The failure-schedule hook points on the workload runner."""

    def make_index(self):
        return DRAMHashIndex()

    def test_before_operation_fires_in_order(self):
        operations = build_mixed_workload(WorkloadSpec(num_keys=50, seed=3))
        seen = []
        WorkloadRunner(self.make_index()).run(
            operations,
            before_operation=lambda index, op: seen.append((index, op.kind)),
        )
        assert [index for index, _kind in seen] == list(range(len(operations)))
        assert [kind for _index, kind in seen] == [op.kind for op in operations]

    def test_before_operation_respects_max_operations(self):
        operations = build_mixed_workload(WorkloadSpec(num_keys=50, seed=3))
        seen = []
        WorkloadRunner(self.make_index()).run(
            operations,
            max_operations=7,
            before_operation=lambda index, op: seen.append(index),
        )
        assert seen == list(range(7))

    def test_before_batch_fires_per_batch(self):
        from repro.core import CLAMConfig
        from repro.service import ClusterService

        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        cluster = ClusterService(num_shards=2, config=config)
        operations = build_mixed_workload(WorkloadSpec(num_keys=100, seed=5))
        batches = []
        WorkloadRunner(cluster).run_batched(
            operations,
            batch_size=32,
            before_batch=lambda index, ops: batches.append((index, len(ops))),
        )
        assert [index for index, _size in batches] == list(range(len(batches)))
        assert sum(size for _index, size in batches) == len(operations)
        assert all(size <= 32 for _index, size in batches)

    def test_hook_can_kill_a_shard_mid_run(self):
        """A hook crashing a shard mid-workload surfaces as failover, not as
        an untyped crash (the bench_failover pattern in miniature)."""
        from repro.core import CLAMConfig
        from repro.service import ClusterService

        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        cluster = ClusterService(num_shards=3, config=config, replication_factor=2)
        operations = build_update_workload(WorkloadSpec(num_keys=120, seed=9))

        def killer(batch_index, _ops):
            if batch_index == 2:
                cluster.fail_shard("shard-1")

        report = WorkloadRunner(cluster).run_batched(
            operations, batch_size=16, before_batch=killer
        )
        assert report.operations == len(operations)
