"""Tests for incarnation placement (whole-device log and chip partitions)."""

import pytest

from repro.core import ConfigurationError, PartitionedChipStore, WholeDeviceLogStore
from repro.flashsim import FlashChip, SSD, SimulationClock
from repro.flashsim.device import DeviceGeometry
from repro.flashsim.flash_chip import FlashChipProfile, GENERIC_FLASH_CHIP_PROFILE


def _pages(count, fill=b"x"):
    return [fill * 8 for _ in range(count)]


class TestWholeDeviceLogStore:
    def test_write_and_read_back(self, intel_ssd):
        store = WholeDeviceLogStore(intel_ssd)
        address, latency = store.write_incarnation([b"page-0", b"page-1"])
        assert latency > 0
        assert store.read_page(address, 0)[0] == b"page-0"
        assert store.read_page(address, 1)[0] == b"page-1"

    def test_incarnations_append_sequentially(self, intel_ssd):
        store = WholeDeviceLogStore(intel_ssd)
        first, _ = store.write_incarnation(_pages(4))
        second, _ = store.write_incarnation(_pages(4))
        assert second == first + 4

    def test_read_incarnation_returns_all_pages(self, intel_ssd):
        store = WholeDeviceLogStore(intel_ssd)
        address, _ = store.write_incarnation([b"a", b"b", b"c"])
        pages, _latency = store.read_incarnation(address, 3)
        assert pages == [b"a", b"b", b"c"]

    def test_wraps_and_reuses_released_space(self):
        clock = SimulationClock()
        ssd = SSD(clock=clock)
        store = WholeDeviceLogStore(ssd)
        incarnation_pages = 64
        capacity = store.capacity_pages // incarnation_pages
        live = []
        # Write more incarnations than fit, releasing the oldest as we go
        # (exactly what BufferHash's eviction does).
        for i in range(capacity * 3):
            if len(live) >= capacity - 1:
                address, pages = live.pop(0)
                store.release(address, pages)
            address, _ = store.write_incarnation(_pages(incarnation_pages))
            live.append((address, incarnation_pages))
        assert store.wrap_count >= 1

    def test_exhaustion_without_release_raises(self):
        clock = SimulationClock()
        ssd = SSD(clock=clock)
        store = WholeDeviceLogStore(ssd)
        incarnation_pages = store.capacity_pages // 4
        for _ in range(4):
            store.write_incarnation(_pages(incarnation_pages))
        with pytest.raises(ConfigurationError):
            store.write_incarnation(_pages(incarnation_pages))

    def test_oversized_incarnation_rejected(self, intel_ssd):
        store = WholeDeviceLogStore(intel_ssd)
        with pytest.raises(ConfigurationError):
            store.write_incarnation(_pages(store.capacity_pages + 1))

    def test_empty_incarnation_rejected(self, intel_ssd):
        store = WholeDeviceLogStore(intel_ssd)
        with pytest.raises(ValueError):
            store.write_incarnation([])

    def test_invalid_reserve_fraction_rejected(self, intel_ssd):
        with pytest.raises(ValueError):
            WholeDeviceLogStore(intel_ssd, reserve_fraction=1.0)


def _small_chip():
    profile = FlashChipProfile(
        name="tiny-nand",
        geometry=DeviceGeometry(page_size=256, pages_per_block=4, num_blocks=32),
        cost_model=GENERIC_FLASH_CHIP_PROFILE.cost_model,
    )
    return FlashChip(profile=profile, clock=SimulationClock())


class TestPartitionedChipStore:
    def test_each_owner_gets_its_own_partition(self):
        store = PartitionedChipStore(_small_chip(), num_partitions=4, pages_per_incarnation=4)
        first = store.partition_for_owner(0)
        second = store.partition_for_owner(1)
        assert first != second
        assert store.partition_for_owner(0) == first  # stable assignment

    def test_write_and_read_back(self):
        store = PartitionedChipStore(_small_chip(), num_partitions=4, pages_per_incarnation=4)
        address, latency = store.write_incarnation_for(0, [b"a", b"b"])
        assert latency > 0
        assert store.read_page(address, 0)[0] == b"a"
        assert store.read_page(address, 1)[0] == b"b"

    def test_partition_wraps_with_erase(self):
        store = PartitionedChipStore(_small_chip(), num_partitions=4, pages_per_incarnation=4)
        addresses = [store.write_incarnation_for(0, _pages(4))[0] for _ in range(store.slots_per_partition * 2)]
        # After wrapping, addresses repeat within the owner's partition.
        assert addresses[0] == addresses[store.slots_per_partition]

    def test_owners_do_not_overlap(self):
        store = PartitionedChipStore(_small_chip(), num_partitions=2, pages_per_incarnation=4)
        address_a, _ = store.write_incarnation_for(0, [b"owner-a"])
        address_b, _ = store.write_incarnation_for(1, [b"owner-b"])
        assert store.read_page(address_a, 0)[0] == b"owner-a"
        assert store.read_page(address_b, 0)[0] == b"owner-b"

    def test_too_many_owners_rejected(self):
        store = PartitionedChipStore(_small_chip(), num_partitions=2, pages_per_incarnation=4)
        store.partition_for_owner(0)
        store.partition_for_owner(1)
        with pytest.raises(ConfigurationError):
            store.partition_for_owner(2)

    def test_oversized_incarnation_rejected(self):
        store = PartitionedChipStore(_small_chip(), num_partitions=4, pages_per_incarnation=4)
        with pytest.raises(ConfigurationError):
            store.write_incarnation_for(0, _pages(8))

    def test_partition_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionedChipStore(_small_chip(), num_partitions=64, pages_per_incarnation=4)
