"""Tests for the bit-sliced sliding-window Bloom filter array (§5.1.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BitSlicedBloomArray, BloomFilter


def _filter_with(keys, num_bits=256, num_hashes=4):
    bloom = BloomFilter(num_bits, num_hashes)
    bloom.update(keys)
    return bloom


class TestBitSlicedBloomArray:
    def test_candidates_empty_when_no_incarnations(self):
        sliced = BitSlicedBloomArray(num_bits=256, num_hashes=4, max_incarnations=4)
        assert sliced.candidates(b"key") == []

    def test_reports_incarnation_containing_key(self):
        sliced = BitSlicedBloomArray(num_bits=256, num_hashes=4, max_incarnations=4)
        sliced.append_filter(_filter_with([b"a", b"b"]), incarnation_id=0)
        sliced.append_filter(_filter_with([b"c"]), incarnation_id=1)
        assert 0 in sliced.candidates(b"a")
        assert 1 in sliced.candidates(b"c")

    def test_no_false_negatives_across_many_incarnations(self):
        sliced = BitSlicedBloomArray(num_bits=2048, num_hashes=6, max_incarnations=8)
        keys_by_incarnation = {}
        for incarnation in range(8):
            keys = [b"inc%d-key%d" % (incarnation, i) for i in range(50)]
            keys_by_incarnation[incarnation] = keys
            sliced.append_filter(_filter_with(keys, num_bits=2048, num_hashes=6), incarnation)
        for incarnation, keys in keys_by_incarnation.items():
            for key in keys:
                assert incarnation in sliced.candidates(key)

    def test_candidates_ordered_newest_first(self):
        sliced = BitSlicedBloomArray(num_bits=256, num_hashes=4, max_incarnations=4)
        sliced.append_filter(_filter_with([b"dup"]), incarnation_id=10)
        sliced.append_filter(_filter_with([b"dup"]), incarnation_id=11)
        candidates = sliced.candidates(b"dup")
        assert candidates[0] == 11
        assert candidates[1] == 10

    def test_eviction_removes_oldest(self):
        sliced = BitSlicedBloomArray(num_bits=256, num_hashes=4, max_incarnations=2)
        sliced.append_filter(_filter_with([b"old"]), incarnation_id=0)
        sliced.append_filter(_filter_with([b"new"]), incarnation_id=1)
        evicted = sliced.evict_oldest()
        assert evicted == 0
        assert sliced.candidates(b"old") == [] or 0 not in sliced.candidates(b"old")
        assert 1 in sliced.candidates(b"new")

    def test_evict_on_empty_returns_none(self):
        sliced = BitSlicedBloomArray(num_bits=64, num_hashes=2, max_incarnations=2)
        assert sliced.evict_oldest() is None

    def test_append_beyond_capacity_rejected(self):
        sliced = BitSlicedBloomArray(num_bits=64, num_hashes=2, max_incarnations=1)
        sliced.append_filter(_filter_with([b"a"], num_bits=64, num_hashes=2), 0)
        with pytest.raises(RuntimeError):
            sliced.append_filter(_filter_with([b"b"], num_bits=64, num_hashes=2), 1)

    def test_mismatched_filter_geometry_rejected(self):
        sliced = BitSlicedBloomArray(num_bits=64, num_hashes=2, max_incarnations=2)
        with pytest.raises(ValueError):
            sliced.append_filter(BloomFilter(128, 2), 0)

    def test_window_wraps_and_lazily_clears(self):
        """Cycling far more incarnations than the window holds must stay correct."""
        sliced = BitSlicedBloomArray(
            num_bits=512, num_hashes=4, max_incarnations=4, spare_bits=8
        )
        for generation in range(40):
            if sliced.live_count >= 4:
                sliced.evict_oldest()
            keys = [b"gen%d-%d" % (generation, i) for i in range(20)]
            sliced.append_filter(_filter_with(keys, num_bits=512, num_hashes=4), generation)
            # Every live generation must still be discoverable.
            for live_generation in range(max(0, generation - 3), generation + 1):
                assert live_generation in sliced.candidates(b"gen%d-0" % live_generation)
        assert sliced.lazy_clear_batches > 0

    def test_agrees_with_individual_filters(self):
        """The sliced organisation must return exactly the incarnations whose
        individual Bloom filter matches (same bits, same hashes)."""
        filters = []
        sliced = BitSlicedBloomArray(num_bits=512, num_hashes=5, max_incarnations=6)
        for incarnation in range(6):
            keys = [b"i%d-%d" % (incarnation, i) for i in range(40)]
            bloom = _filter_with(keys, num_bits=512, num_hashes=5)
            filters.append((incarnation, bloom))
            sliced.append_filter(bloom, incarnation)
        probe_keys = [b"i%d-%d" % (i % 6, i) for i in range(200)] + [b"absent-%d" % i for i in range(200)]
        for key in probe_keys:
            expected = {identifier for identifier, bloom in filters if key in bloom}
            assert set(sliced.candidates(key)) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=30, unique=True))
    def test_property_added_keys_always_candidates(self, keys):
        sliced = BitSlicedBloomArray(num_bits=512, num_hashes=4, max_incarnations=3)
        sliced.append_filter(_filter_with(keys, num_bits=512, num_hashes=4), incarnation_id=99)
        for key in keys:
            assert 99 in sliced.candidates(key)
