"""Tests for the linear I/O cost model."""

import pytest

from repro.flashsim import IOCost, LinearCostModel
from repro.flashsim.latency import scale_cost


class TestIOCost:
    def test_cost_is_linear_in_size(self):
        cost = IOCost(fixed_ms=1.0, per_byte_ms=0.01)
        assert cost.cost(0) == pytest.approx(1.0)
        assert cost.cost(100) == pytest.approx(2.0)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            IOCost(fixed_ms=-1.0, per_byte_ms=0.0)
        with pytest.raises(ValueError):
            IOCost(fixed_ms=0.0, per_byte_ms=-0.1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            IOCost(fixed_ms=0.0, per_byte_ms=0.0).cost(-1)

    def test_zero_cost_model_allowed(self):
        assert IOCost(0.0, 0.0).cost(1000) == 0.0


class TestLinearCostModel:
    @pytest.fixture
    def model(self) -> LinearCostModel:
        return LinearCostModel(
            random_read=IOCost(0.2, 0.001),
            sequential_read=IOCost(0.05, 0.001),
            random_write=IOCost(0.5, 0.002),
            sequential_write=IOCost(0.1, 0.001),
            erase=IOCost(1.5, 0.0001),
        )

    def test_random_read_more_expensive_than_sequential(self, model):
        assert model.read_cost(512, sequential=False) > model.read_cost(512, sequential=True)

    def test_random_write_more_expensive_than_sequential(self, model):
        assert model.write_cost(512, sequential=False) > model.write_cost(512, sequential=True)

    def test_erase_cost(self, model):
        assert model.erase_cost(1000) == pytest.approx(1.5 + 0.1)

    def test_batching_amortizes_fixed_cost(self, model):
        """One big sequential write is cheaper than many small ones (principle P3)."""
        one_big = model.write_cost(64 * 512, sequential=True)
        many_small = 64 * model.write_cost(512, sequential=True)
        assert one_big < many_small


class TestScaleCost:
    def test_scaling(self):
        cost = IOCost(1.0, 0.5)
        doubled = scale_cost(cost, 2.0)
        assert doubled.fixed_ms == pytest.approx(2.0)
        assert doubled.per_byte_ms == pytest.approx(1.0)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            scale_cost(IOCost(1.0, 0.5), -1.0)
