"""Tests for batched execution: result equivalence and latency accounting."""

import pytest

from repro.core import CLAMConfig
from repro.core.errors import ConfigurationError
from repro.core.results import DeleteResult, InsertResult, LookupResult
from repro.service import BatchExecutor, ClusterService, ShardRouter
from repro.workloads import (
    Operation,
    OpKind,
    WorkloadSpec,
    build_mixed_workload,
    build_update_workload,
    fingerprint_for,
)


def small_cluster(**overrides):
    config = CLAMConfig.scaled(
        num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
    )
    return ClusterService(num_shards=4, config=config, **overrides)


class TestBatchEquivalence:
    def test_batch_results_equal_sequential_results(self):
        """Batched execution returns the same per-op records as one-at-a-time."""
        operations = build_mixed_workload(WorkloadSpec(num_keys=600, seed=11))
        sequential = small_cluster()
        batched = small_cluster()

        expected = []
        for operation in operations:
            if operation.kind is OpKind.LOOKUP:
                expected.append(sequential.lookup(operation.key))
            else:
                expected.append(sequential.insert(operation.key, operation.value))

        got = []
        for start in range(0, len(operations), 48):
            batch = batched.execute_batch(operations[start : start + 48])
            got.extend(batch.results)

        assert len(got) == len(expected)
        for op, want, have in zip(operations, expected, got):
            assert type(have) is type(want)
            assert have.key == want.key
            if op.kind is OpKind.LOOKUP:
                assert have.found == want.found
                assert have.value == want.value
            assert have.latency_ms == pytest.approx(want.latency_ms)

    def test_update_and_delete_equivalence(self):
        operations = build_update_workload(
            WorkloadSpec(num_keys=400, update_fraction=0.3, delete_fraction=0.2, seed=5)
        )
        sequential = small_cluster()
        batched = small_cluster()
        for operation in operations:
            if operation.kind is OpKind.LOOKUP:
                sequential.lookup(operation.key)
            elif operation.kind is OpKind.DELETE:
                sequential.delete(operation.key)
            else:
                sequential.update(operation.key, operation.value)
        batched.execute_batch(operations)
        # After the same logical stream, both clusters answer identically.
        for identifier in range(200):
            key = fingerprint_for(identifier, namespace=b"wl-upd-5")
            assert batched.get(key) == sequential.get(key)

    def test_per_key_order_preserved_within_batch(self):
        cluster = small_cluster()
        key = fingerprint_for(1)
        batch = cluster.execute_batch(
            [
                Operation(OpKind.INSERT, key, b"v1"),
                Operation(OpKind.UPDATE, key, b"v2"),
                Operation(OpKind.LOOKUP, key),
                Operation(OpKind.DELETE, key),
                Operation(OpKind.LOOKUP, key),
            ]
        )
        insert, update, first_lookup, delete, second_lookup = batch.results
        assert isinstance(insert, InsertResult)
        assert isinstance(update, InsertResult)
        assert isinstance(first_lookup, LookupResult)
        assert first_lookup.value == b"v2"
        assert isinstance(delete, DeleteResult)
        assert isinstance(second_lookup, LookupResult)
        assert not second_lookup.found


class TestBatchAccounting:
    def test_empty_batch(self):
        batch = small_cluster().execute_batch([])
        assert batch.operations == 0
        assert batch.results == []
        assert batch.makespan_ms == 0.0

    def test_per_shard_breakdown_sums_to_batch(self):
        cluster = small_cluster()
        operations = build_mixed_workload(WorkloadSpec(num_keys=300, seed=3))
        batch = cluster.execute_batch(operations)
        assert batch.operations == len(operations)
        assert sum(s.operations for s in batch.per_shard.values()) == len(operations)
        assert sum(s.lookups for s in batch.per_shard.values()) == sum(
            1 for op in operations if op.kind is OpKind.LOOKUP
        )
        assert batch.busy_ms == pytest.approx(
            sum(s.busy_ms for s in batch.per_shard.values())
        )
        assert batch.dispatch_ms == pytest.approx(
            sum(s.dispatch_ms for s in batch.per_shard.values())
        )
        assert batch.routing_ms == pytest.approx(
            sum(s.routing_ms for s in batch.per_shard.values())
        )

    def test_makespan_is_slowest_shard_all_costs_in(self):
        cluster = small_cluster()
        operations = build_mixed_workload(WorkloadSpec(num_keys=200, seed=9))
        batch = cluster.execute_batch(operations)
        slowest = max(s.total_ms for s in batch.per_shard.values())
        assert batch.makespan_ms == pytest.approx(slowest)
        # Routing is charged per-operation on the owning shard.
        assert batch.routing_ms == pytest.approx(
            cluster.executor.routing_cost_ms * len(operations)
        )
        # Parallel shards: completing when the slowest finishes beats summing.
        assert batch.makespan_ms < batch.busy_ms + batch.dispatch_ms + batch.routing_ms

    def test_dispatch_amortisation(self):
        cluster = small_cluster()
        operations = [
            Operation(OpKind.INSERT, fingerprint_for(i), b"v") for i in range(64)
        ]
        batch = cluster.execute_batch(operations)
        # Dispatch paid once per shard touched, not once per operation.
        assert batch.shards_touched <= cluster.num_shards
        assert batch.dispatch_ms == pytest.approx(
            batch.shards_touched * cluster.executor.dispatch_overhead_ms
        )
        assert batch.dispatch_ms_unbatched == pytest.approx(
            len(operations) * cluster.executor.dispatch_overhead_ms
        )
        assert batch.dispatch_saved_ms > 0

    def test_shard_clocks_advance_by_sub_batch_time(self):
        cluster = small_cluster()
        before = {sid: clam.clock.now_ms for sid, clam in cluster.shards.items()}
        batch = cluster.execute_batch(
            [Operation(OpKind.INSERT, fingerprint_for(i), b"v") for i in range(32)]
        )
        for shard_id, stats in batch.per_shard.items():
            elapsed = cluster.shards[shard_id].clock.now_ms - before[shard_id]
            assert elapsed == pytest.approx(stats.total_ms)

    def test_unknown_shard_instance_rejected(self):
        router = ShardRouter(["a", "b"])
        executor = BatchExecutor(router, {"a": small_cluster().shards["shard-0"]})
        operations = [
            Operation(OpKind.INSERT, fingerprint_for(i), b"v") for i in range(50)
        ]
        with pytest.raises(ConfigurationError):
            executor.execute(operations)

    def test_negative_overheads_rejected(self):
        router = ShardRouter(["a"])
        with pytest.raises(ConfigurationError):
            BatchExecutor(router, {}, dispatch_overhead_ms=-1.0)
