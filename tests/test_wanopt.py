"""Tests for the WAN optimizer: traces, cache, link, engine and end-to-end scenarios."""

import pytest

from repro.baselines import ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.flashsim import MagneticDisk, SSD, SimulationClock, TRANSCEND_SSD_PROFILE
from repro.wanopt import (
    CompressionEngine,
    ContentCache,
    Link,
    SyntheticTraceGenerator,
    WANOptimizer,
    build_payload_objects,
)


def _clam_optimizer(link_mbps=100.0, redundancy=0.5, num_objects=30, mean_object_size=64 * 1024):
    clock = SimulationClock()
    clam = CLAM(
        CLAMConfig.scaled(num_super_tables=8, buffer_capacity_items=64, incarnations_per_table=8),
        storage=SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock),
    )
    cache = ContentCache(MagneticDisk(clock=clock))
    engine = CompressionEngine(index=clam, content_cache=cache)
    link = Link(bandwidth_mbps=link_mbps, clock=clock)
    objects = SyntheticTraceGenerator(
        redundancy=redundancy,
        num_objects=num_objects,
        mean_object_size=mean_object_size,
        mean_chunk_size=8 * 1024,
        seed=13,
    ).generate()
    return WANOptimizer(engine=engine, link=link, clock=clock), objects


class TestSyntheticTraces:
    def test_measured_redundancy_close_to_target(self):
        generator = SyntheticTraceGenerator(redundancy=0.5, num_objects=60, seed=3)
        objects = generator.generate()
        assert generator.measured_redundancy(objects) == pytest.approx(0.5, abs=0.08)

    def test_low_redundancy_trace(self):
        generator = SyntheticTraceGenerator(redundancy=0.15, num_objects=60, seed=4)
        objects = generator.generate()
        assert generator.measured_redundancy(objects) == pytest.approx(0.15, abs=0.06)

    def test_objects_have_positive_sizes(self):
        objects = SyntheticTraceGenerator(num_objects=10, seed=5).generate()
        assert all(obj.size_bytes > 0 and obj.num_chunks > 0 for obj in objects)

    def test_deterministic_given_seed(self):
        first = SyntheticTraceGenerator(num_objects=5, seed=6).generate()
        second = SyntheticTraceGenerator(num_objects=5, seed=6).generate()
        assert [o.chunks for o in first] == [o.chunks for o in second]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(redundancy=1.0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(num_objects=0)

    def test_payload_objects_chunked_by_rabin(self):
        objects = build_payload_objects(num_objects=3, object_size=16 * 1024, redundancy=0.5)
        assert len(objects) == 3
        for obj in objects:
            assert obj.size_bytes == sum(chunk.size for chunk in obj.chunks)
            assert all(chunk.payload is not None for chunk in obj.chunks)


class TestContentCache:
    def test_store_and_read_back(self):
        cache = ContentCache(MagneticDisk(clock=SimulationClock()))
        address, latency = cache.store(b"fp-1", size=5000, payload=b"x" * 5000)
        assert latency > 0
        assert cache.contains(b"fp-1")
        payload, _read_latency = cache.read(b"fp-1")
        assert payload == b"x" * 5000
        assert cache.address_of(b"fp-1") == address

    def test_missing_chunk(self):
        cache = ContentCache(MagneticDisk(clock=SimulationClock()))
        payload, latency = cache.read(b"absent")
        assert payload is None
        assert latency == 0.0

    def test_wraps_when_full(self):
        cache = ContentCache(MagneticDisk(clock=SimulationClock()))
        chunk_size = cache.capacity_bytes // 4
        for i in range(10):
            cache.store(b"fp-%d" % i, size=chunk_size)
        assert cache.chunks_stored == 10


class TestLink:
    def test_serialization_delay(self):
        link = Link(bandwidth_mbps=10.0, clock=SimulationClock())
        # 10 Mbps = 10,000 bits per ms -> 1250 bytes per ms.
        assert link.serialization_delay_ms(1250) == pytest.approx(1.0)

    def test_transmit_advances_clock(self):
        clock = SimulationClock()
        link = Link(bandwidth_mbps=10.0, clock=clock)
        link.transmit(12_500)
        assert clock.now_ms == pytest.approx(10.0)
        assert link.bytes_sent == 12_500

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth_mbps=0, clock=SimulationClock())


class TestCompressionEngine:
    def test_duplicate_chunks_are_compressed_away(self):
        clock = SimulationClock()
        clam = CLAM(CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64), storage=SSD(clock=clock))
        engine = CompressionEngine(index=clam)
        objects = SyntheticTraceGenerator(redundancy=0.5, num_objects=40, seed=21).generate()
        for obj in objects:
            engine.process_object(obj)
        assert engine.total_compressed_bytes < engine.total_original_bytes
        # With ~50% redundant bytes the overall ratio should approach 2.
        assert engine.overall_compression_ratio == pytest.approx(2.0, rel=0.25)

    def test_first_sight_of_chunk_is_not_compressed(self):
        clock = SimulationClock()
        clam = CLAM(CLAMConfig.scaled(), storage=SSD(clock=clock))
        engine = CompressionEngine(index=clam)
        objects = SyntheticTraceGenerator(redundancy=0.0, num_objects=5, seed=22).generate()
        for obj in objects:
            result = engine.process_object(obj)
            assert result.chunks_matched == 0
            assert result.compressed_bytes == result.original_bytes

    def test_timing_breakdown_populated(self):
        clock = SimulationClock()
        clam = CLAM(CLAMConfig.scaled(), storage=SSD(clock=clock))
        cache = ContentCache(MagneticDisk(clock=clock))
        engine = CompressionEngine(index=clam, content_cache=cache)
        obj = SyntheticTraceGenerator(redundancy=0.0, num_objects=1, seed=23).generate()[0]
        result = engine.process_object(obj)
        assert result.lookup_time_ms > 0
        assert result.insert_time_ms > 0
        assert result.cache_write_time_ms > 0
        assert result.processing_time_ms >= result.lookup_time_ms


class TestWANOptimizerScenarios:
    def test_throughput_test_near_ideal_at_low_link_speed(self):
        optimizer, objects = _clam_optimizer(link_mbps=10.0, redundancy=0.5)
        result = optimizer.run_throughput_test(objects)
        assert result.effective_bandwidth_improvement == pytest.approx(
            result.ideal_improvement, rel=0.2
        )
        assert result.effective_bandwidth_improvement > 1.5

    def test_throughput_improvement_shrinks_at_very_high_link_speed(self):
        slow_link, objects = _clam_optimizer(link_mbps=10.0, redundancy=0.5, num_objects=20)
        fast_link, objects_fast = _clam_optimizer(link_mbps=2000.0, redundancy=0.5, num_objects=20)
        slow_result = slow_link.run_throughput_test(objects)
        fast_result = fast_link.run_throughput_test(objects_fast)
        assert fast_result.effective_bandwidth_improvement < slow_result.effective_bandwidth_improvement

    def test_clam_outperforms_bdb_at_moderate_link_speed(self):
        """The Figure 9 headline: at ~100 Mbps a CLAM-backed optimizer still
        improves effective bandwidth while a BDB-backed one becomes the
        bottleneck."""
        clam_optimizer, objects = _clam_optimizer(link_mbps=100.0, redundancy=0.5, num_objects=25)
        clam_result = clam_optimizer.run_throughput_test(objects)

        clock = SimulationClock()
        bdb = ExternalHashIndex(SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock), cache_pages=0)
        cache = ContentCache(MagneticDisk(clock=clock))
        engine = CompressionEngine(index=bdb, content_cache=cache)
        link = Link(bandwidth_mbps=100.0, clock=clock)
        bdb_optimizer = WANOptimizer(engine=engine, link=link, clock=clock)
        bdb_objects = SyntheticTraceGenerator(
            redundancy=0.5, num_objects=25, mean_object_size=64 * 1024, mean_chunk_size=8 * 1024, seed=13
        ).generate()
        bdb_result = bdb_optimizer.run_throughput_test(bdb_objects)

        assert clam_result.effective_bandwidth_improvement > bdb_result.effective_bandwidth_improvement
        assert clam_result.effective_bandwidth_improvement > 1.2
        assert bdb_result.effective_bandwidth_improvement < 1.0

    def test_high_load_scenario_produces_per_object_improvements(self):
        optimizer, objects = _clam_optimizer(link_mbps=10.0, redundancy=0.5, num_objects=20)
        result = optimizer.run_high_load_test(objects)
        assert len(result.objects) == 20
        assert result.mean_throughput_improvement > 1.0
        assert all(obj.completion_ms >= obj.arrival_ms for obj in result.objects)
        sizes_and_improvements = result.improvements_by_size()
        assert len(sizes_and_improvements) == 20

    def test_mismatched_clock_rejected(self):
        clock_a, clock_b = SimulationClock(), SimulationClock()
        clam = CLAM(CLAMConfig.scaled(), storage=SSD(clock=clock_a))
        engine = CompressionEngine(index=clam)
        link = Link(bandwidth_mbps=10.0, clock=clock_b)
        with pytest.raises(ValueError):
            WANOptimizer(engine=engine, link=link, clock=clock_a)
