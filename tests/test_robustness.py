"""Robustness and cross-checking tests: unusual paths, consistency between
the analytical model and the simulator, and graceful handling of edge cases."""

import pytest

from repro.analysis import INTEL_SSD_COSTS, required_bloom_bits
from repro.analysis.cost_model import expected_lookup_io_cost_ms
from repro.core import CLAM, CLAMConfig, WholeDeviceLogStore
from repro.core.incarnation import required_pages
from repro.flashsim import FlashChip, SSD, SimulationClock
from repro.flashsim.device import DeviceGeometry
from repro.flashsim.flash_chip import FlashChipProfile, GENERIC_FLASH_CHIP_PROFILE
from repro.workloads import WorkloadRunner, WorkloadSpec, build_lookup_then_insert_workload

GB = 1024**3


class TestLogStoreSkipsLiveRegions:
    def test_wrap_around_live_region_preserves_data(self):
        """When the circular log wraps onto a region that is still live, it must
        skip it rather than overwrite it."""
        clock = SimulationClock()
        ssd = SSD(clock=clock)
        store = WholeDeviceLogStore(ssd)
        pages_per_incarnation = store.capacity_pages // 8

        # One long-lived incarnation near the start of the device.
        keeper_address, _ = store.write_incarnation([b"keeper"] + [b""] * (pages_per_incarnation - 1))
        # Churn through many short-lived incarnations, releasing each
        # immediately, so the head wraps repeatedly past the keeper.
        previous = None
        for i in range(30):
            if previous is not None:
                store.release(*previous)
            address, _ = store.write_incarnation([b"churn-%d" % i] * pages_per_incarnation)
            previous = (address, pages_per_incarnation)
        assert store.wrap_count >= 1
        assert store.read_page(keeper_address, 0)[0] == b"keeper"


class TestRequiredPages:
    def test_scales_with_payload(self):
        small = required_pages({b"k": b"v"}, page_size=512)
        large = required_pages({b"key-%d" % i: b"x" * 64 for i in range(100)}, page_size=512)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            required_pages({}, page_size=4)
        with pytest.raises(ValueError):
            required_pages({}, page_size=512, fill_factor=0.0)

    def test_large_values_do_not_break_flushes(self):
        """Values much larger than the configured entry-size estimate must not
        break incarnation serialisation (the incarnation simply grows)."""
        clam = CLAM(
            CLAMConfig.scaled(num_super_tables=2, buffer_capacity_items=16, incarnations_per_table=4),
            storage="intel-ssd",
        )
        for i in range(200):
            clam.insert(b"big-%d" % i, b"v" * 200)
        recent = [b"big-%d" % i for i in range(200 - 32, 200)]
        assert all(clam.lookup(key).found for key in recent)


class TestAnalysisSimulatorConsistency:
    def test_bloom_sizing_formula_consistent_with_cost_curve(self):
        """The §6.4 closed form for the Bloom budget must actually achieve the
        target overhead when plugged back into the §6.2 cost expression."""
        flash = 32 * GB
        target_ms = 0.5
        bits = required_bloom_bits(INTEL_SSD_COSTS, flash, target_ms, entry_size_bytes=32)
        achieved = expected_lookup_io_cost_ms(
            INTEL_SSD_COSTS,
            flash_bytes=flash,
            buffer_bytes=flash / (8 * 32 * 0.48),  # ~B_opt
            bloom_bytes=bits / 8.0,
            entry_size_bytes=32,
        )
        assert achieved <= target_ms * 1.2

    def test_simulated_miss_cost_below_analytical_bound(self):
        """Measured spurious-lookup I/O on the simulator should not exceed what
        the analytical model predicts for the configured Bloom budget."""
        config = CLAMConfig.scaled(
            num_super_tables=8, buffer_capacity_items=64, incarnations_per_table=8,
            bloom_bits_per_entry=16.0,
        )
        clam = CLAM(config, storage="intel-ssd")
        spec = WorkloadSpec(num_keys=5_000, target_lsr=0.0, recency_window=2_000, seed=3)
        report = WorkloadRunner(clam).run(build_lookup_then_insert_workload(spec))
        spurious_fraction = sum(1 for reads in report.lookup_flash_reads if reads) / report.lookups
        # 16 bits/entry corresponds to a ~1e-3 per-filter false positive rate;
        # with at most 8 incarnations the spurious fraction stays below ~1%.
        assert spurious_fraction < 0.01


class TestFlashChipCLAM:
    def test_full_clam_on_raw_chip(self):
        """A CLAM on a raw flash chip (partitioned layout, explicit erases)
        behaves correctly and keeps insert latency amortised."""
        clock = SimulationClock()
        profile = FlashChipProfile(
            name="clam-chip",
            geometry=DeviceGeometry(page_size=512, pages_per_block=8, num_blocks=64),
            cost_model=GENERIC_FLASH_CHIP_PROFILE.cost_model,
        )
        chip = FlashChip(profile=profile, clock=clock)
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        clam = CLAM(config, storage=chip)
        keys = [b"chip-%d" % i for i in range(3_500)]
        for key in keys:
            clam.insert(key, b"v")
        assert clam.stats.mean_insert_latency_ms < 0.2
        assert chip.stats.count() > 0
        guaranteed = config.num_super_tables * config.buffer_capacity_items
        assert all(clam.lookup(key).found for key in keys[-guaranteed:])
        # Wrapping partitions must have erased blocks along the way.
        assert sum(chip.erase_count_per_block.values()) > 0
