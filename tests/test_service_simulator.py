"""Tests for the closed-loop multi-client traffic simulator."""

import pytest

from repro.core import CLAMConfig
from repro.service import ClusterService, TrafficSimulator, TrafficSpec


def make_cluster(num_shards=4):
    config = CLAMConfig.scaled(
        num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
    )
    return ClusterService(num_shards=num_shards, config=config)


def small_spec(**overrides):
    defaults = dict(
        num_clients=4, requests_per_client=15, batch_size=4, key_space=500, seed=77
    )
    defaults.update(overrides)
    return TrafficSpec(**defaults)


class TestTrafficSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(num_clients=0)
        with pytest.raises(ValueError):
            TrafficSpec(batch_size=0)
        with pytest.raises(ValueError):
            TrafficSpec(lookup_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficSpec(lookup_fraction=0.6, update_fraction=0.3, delete_fraction=0.2)
        with pytest.raises(ValueError):
            TrafficSpec(think_time_ms=-1)
        with pytest.raises(ValueError):
            TrafficSpec(value_size=-5)
        with pytest.raises(ValueError):
            TrafficSpec(hot_shard_threshold=0.5)


class TestSimulatorRun:
    def test_completes_every_request(self):
        spec = small_spec()
        report = TrafficSimulator(make_cluster(), spec).run()
        assert report.requests == spec.num_clients * spec.requests_per_client
        assert report.operations == report.requests * spec.batch_size
        assert len(report.clients) == spec.num_clients
        for client in report.clients:
            assert client.requests == spec.requests_per_client
            assert client.operations == spec.requests_per_client * spec.batch_size
            assert len(client.request_latencies_ms) == spec.requests_per_client
            assert client.mean_request_latency_ms > 0
        assert sum(report.ops_per_shard.values()) == report.operations

    def test_deterministic_given_seed(self):
        first = TrafficSimulator(make_cluster(), small_spec()).run()
        second = TrafficSimulator(make_cluster(), small_spec()).run()
        assert first.operations == second.operations
        assert first.duration_ms == pytest.approx(second.duration_ms)
        assert first.ops_per_shard == second.ops_per_shard
        assert first.hot_shards == second.hot_shards
        different = TrafficSimulator(make_cluster(), small_spec(seed=78)).run()
        assert different.ops_per_shard != first.ops_per_shard

    def test_duration_is_slowest_client(self):
        report = TrafficSimulator(make_cluster(), small_spec()).run()
        assert report.duration_ms == pytest.approx(
            max(client.finish_time_ms for client in report.clients)
        )
        assert report.throughput_ops_per_second > 0

    def test_warmup_gives_lookups_hits(self):
        cluster = make_cluster()
        simulator = TrafficSimulator(
            cluster, small_spec(lookup_fraction=0.8, zipf_skew=1.2)
        )
        inserted = simulator.warmup(300)
        assert inserted == 300
        report = simulator.run()
        assert report.lookups > 0
        assert report.lookup_success_rate > 0.5

    def test_think_time_stretches_duration(self):
        fast = TrafficSimulator(make_cluster(), small_spec()).run()
        slow = TrafficSimulator(make_cluster(), small_spec(think_time_ms=5.0)).run()
        assert slow.duration_ms > fast.duration_ms
        # Think time keeps clients idle; op counts stay identical.
        assert slow.operations == fast.operations

    def test_latency_summary(self):
        report = TrafficSimulator(make_cluster(), small_spec()).run()
        summary = report.request_latency_summary()
        assert summary.count == report.requests
        assert summary.min_ms <= summary.p99_ms <= summary.max_ms


class TestHotShardDetection:
    def test_extreme_skew_flags_a_hot_shard(self):
        # With near-degenerate Zipf skew almost all traffic hits one key,
        # which lands on exactly one shard of eight.
        spec = small_spec(
            num_clients=2,
            requests_per_client=20,
            zipf_skew=4.0,
            lookup_fraction=0.9,
            update_fraction=0.1,
        )
        report = TrafficSimulator(make_cluster(num_shards=8), spec).run()
        assert report.hot_shards
        hottest = max(report.ops_per_shard, key=report.ops_per_shard.get)
        assert hottest in report.hot_shards
        assert report.imbalance_factor > spec.hot_shard_threshold

    def test_uniform_traffic_flags_nothing(self):
        # Skew near zero spreads load: nobody should exceed 1.5x the mean by
        # much; use a generous threshold to keep the test robust.
        spec = small_spec(zipf_skew=0.01, key_space=4000, hot_shard_threshold=2.0)
        report = TrafficSimulator(make_cluster(), spec).run()
        assert report.hot_shards == []

    def test_idle_shards_count_toward_mean(self):
        # All traffic on one key -> one shard of eight; idle shards must drag
        # the mean down so both hot detection and imbalance see the skew.
        spec = small_spec(
            key_space=2, zipf_skew=3.0, lookup_fraction=0.9, update_fraction=0.1
        )
        report = TrafficSimulator(make_cluster(num_shards=8), spec).run()
        assert set(report.ops_per_shard) == {f"shard-{i}" for i in range(8)}
        assert report.hot_shards
        assert report.imbalance_factor > spec.hot_shard_threshold

    def test_report_includes_idle_shards_with_zero_ops(self):
        report = TrafficSimulator(make_cluster(num_shards=4), small_spec()).run()
        assert set(report.ops_per_shard) == set(report.busy_ms_per_shard)
        assert len(report.ops_per_shard) == 4


class TestFailureSchedule:
    def replicated_cluster(self):
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        return ClusterService(num_shards=4, config=config, replication_factor=2)

    def test_event_validation(self):
        from repro.core.errors import ConfigurationError
        from repro.service import FailureEvent

        with pytest.raises(ConfigurationError):
            FailureEvent(at_request=-1, action="fail", shard_id="shard-0")
        with pytest.raises(ConfigurationError):
            FailureEvent(at_request=0, action="explode", shard_id="shard-0")
        with pytest.raises(ConfigurationError):
            FailureEvent(at_request=0, action="fail")  # no shard
        FailureEvent(at_request=0, action="recover")  # recover needs no shard

    def test_scheduled_kill_and_recovery_loses_nothing_with_rf2(self):
        from repro.service import FailureEvent
        from repro.workloads import fingerprint_for

        cluster = self.replicated_cluster()
        simulator = TrafficSimulator(
            cluster,
            small_spec(requests_per_client=20),
            schedule=[
                FailureEvent(at_request=15, action="fail", shard_id="shard-2"),
                FailureEvent(at_request=40, action="recover"),
            ],
        )
        warmed = simulator.warmup(300)
        report = simulator.run()
        assert [event[1] for event in report.fired_events] == ["fail", "recover"]
        assert len(report.recovery_reports) == 1
        recovery = report.recovery_reports[0]
        assert recovery.keys_lost == 0
        assert "shard-2" not in cluster.shards
        # Every warmed key survived the mid-run shard death.
        for identifier in range(warmed):
            assert cluster.lookup(fingerprint_for(identifier)).found
        # RF=2 masks the outage completely.
        assert report.availability == 1.0
        assert report.failed_requests == 0

    def test_scheduled_runs_are_deterministic(self):
        from repro.service import FailureEvent

        def run_once():
            cluster = self.replicated_cluster()
            simulator = TrafficSimulator(
                cluster,
                small_spec(requests_per_client=20),
                schedule=[
                    FailureEvent(at_request=10, action="fail", shard_id="shard-1"),
                    FailureEvent(at_request=30, action="recover"),
                ],
            )
            simulator.warmup(200)
            report = simulator.run()
            return (
                report.operations,
                report.requests,
                round(report.duration_ms, 6),
                report.fired_events,
                report.recovery_reports[0].keys_re_replicated,
            )

        assert run_once() == run_once()

    def test_unreplicated_outage_costs_availability(self):
        from repro.service import FailureEvent

        cluster = make_cluster()
        simulator = TrafficSimulator(
            cluster,
            small_spec(requests_per_client=20),
            schedule=[FailureEvent(at_request=10, action="fail", shard_id="shard-0")],
        )
        simulator.warmup(200)
        report = simulator.run()
        assert report.failed_requests > 0
        assert report.availability < 1.0
        total = report.requests + report.failed_requests
        assert total == 4 * 20

    def test_events_beyond_the_request_count_fire_at_end_of_run(self):
        from repro.service import FailureEvent

        cluster = self.replicated_cluster()
        total = 4 * 15  # num_clients * requests_per_client of small_spec()
        simulator = TrafficSimulator(
            cluster,
            small_spec(),
            schedule=[
                FailureEvent(at_request=total - 5, action="fail", shard_id="shard-0"),
                FailureEvent(at_request=total + 100, action="recover"),
            ],
        )
        simulator.warmup(200)
        report = simulator.run()
        assert [event[1] for event in report.fired_events] == ["fail", "recover"]
        assert len(report.recovery_reports) == 1
        assert "shard-0" not in cluster.shards  # the late recover still ran
