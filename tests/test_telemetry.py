"""Tests for the unified telemetry plane (registry, tracing, events, schema).

Covers the contracts the observability layer stands on:

* histogram **merge exactness** — merging shard histograms is bucket-wise
  addition over identical boundaries, so ``merge(A, B)`` is *identical* to
  the histogram of the concatenated stream, percentiles included, and merge
  order cannot matter (hypothesis-checked);
* **percentile conservatism** — reported percentiles are bucket upper edges
  clamped to the observed max, so they never under-report and never exceed
  one bucket width of the true nearest-rank value;
* **trace propagation** — spans opened across CLAM → device and cluster →
  batch executor share one trace, including the failover re-dispatch path
  where a mid-batch shard death reroutes operations to a replica;
* **event-log ordering** — monotonic sequence numbers over the shard
  up/down/heal/recovery lifecycle, and :meth:`ClusterStats.health` telling a
  downed-and-healed shard apart from one that never failed;
* **snapshot schema** — every envelope produced by the exporters validates
  against the checked-in ``telemetry_schema.json`` via the stdlib validator.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CLAM, CLAMConfig
from repro.service import ClusterService
from repro.telemetry import (
    EventLog,
    LatencyHistogram,
    MetricsRegistry,
    SchemaError,
    Tracer,
    build_snapshot,
    default_latency_buckets,
    load_schema,
    tracing,
    validate,
    validate_snapshot,
    write_snapshot,
)
from repro.workloads import Operation, OpKind, fingerprint_for


def telemetry_config(**overrides) -> CLAMConfig:
    defaults = dict(
        num_super_tables=4,
        buffer_capacity_items=32,
        incarnations_per_table=4,
        telemetry_enabled=True,
    )
    defaults.update(overrides)
    return CLAMConfig.scaled(**defaults)


def make_cluster(**overrides) -> ClusterService:
    kwargs = dict(num_shards=4, replication_factor=2, config=telemetry_config())
    kwargs.update(overrides)
    return ClusterService(**kwargs)


#: Millisecond latencies in the histogram's covered range, with sub-bucket
#: jitter so bucket assignment is exercised away from the edges.
latencies = st.lists(
    st.floats(min_value=1e-3, max_value=5e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestHistogram:
    def test_observe_updates_scalars(self):
        hist = LatencyHistogram("h")
        for value in (0.5, 2.0, 8.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(10.5)
        assert hist.min == 0.5
        assert hist.max == 8.0

    def test_percentiles_are_conservative_and_bounded(self):
        hist = LatencyHistogram("h")
        values = [0.01 * (i + 1) for i in range(1000)]  # 0.01 .. 10.0 ms
        for value in values:
            hist.observe(value)
        boundaries = hist.boundaries
        ratio = boundaries[1] / boundaries[0]  # one bucket width, multiplicatively
        for fraction in (0.5, 0.9, 0.99, 0.999):
            true_value = values[max(1, math.ceil(fraction * len(values))) - 1]
            reported = hist.percentile(fraction)
            assert reported >= true_value or reported == hist.max
            assert reported <= true_value * ratio * (1 + 1e-9)

    def test_percentile_monotonic(self):
        hist = LatencyHistogram("h")
        for index in range(500):
            hist.observe(0.001 * (1.3 ** (index % 30)))
        snap = hist.snapshot()["percentiles_ms"]
        assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["p999"]

    def test_overflow_values_clamp_to_observed_max(self):
        hist = LatencyHistogram("h")
        hist.observe(5e6)  # beyond the last boundary
        assert hist.percentile(0.5) == 5e6

    def test_merge_requires_identical_boundaries(self):
        left = LatencyHistogram("h")
        right = LatencyHistogram("h", boundaries=default_latency_buckets(per_decade=5))
        with pytest.raises(ValueError):
            left.merge(right)

    @settings(deadline=None, derandomize=True, max_examples=60)
    @given(first=latencies, second=latencies)
    def test_merge_equals_whole_stream(self, first, second):
        merged = LatencyHistogram("h")
        for value in first:
            merged.observe(value)
        other = LatencyHistogram("h")
        for value in second:
            other.observe(value)
        merged.merge(other)

        whole = LatencyHistogram("h")
        for value in first + second:
            whole.observe(value)

        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min
        assert merged.max == whole.max
        for fraction in (0.5, 0.9, 0.99, 0.999):
            assert merged.percentile(fraction) == whole.percentile(fraction)

    @settings(deadline=None, derandomize=True, max_examples=40)
    @given(streams=st.lists(latencies, min_size=2, max_size=4))
    def test_merged_is_order_independent(self, streams):
        histograms = []
        for stream in streams:
            hist = LatencyHistogram("h")
            for value in stream:
                hist.observe(value)
            histograms.append(hist)
        forward = LatencyHistogram.merged("h", histograms)
        backward = LatencyHistogram.merged("h", list(reversed(histograms)))
        assert forward.counts == backward.counts
        assert forward.percentiles() == backward.percentiles()


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.counter("ops").inc(4)
        registry.gauge("live").set(3)
        registry.gauge("live").add(-1)
        snap = registry.snapshot()
        assert snap["counters"]["ops"] == 5
        assert snap["gauges"]["live"] == 2
        with pytest.raises(ValueError):
            registry.counter("ops").inc(-1)

    def test_merge_combines_shards(self):
        shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
        shard_a.counter("operations").inc(10)
        shard_b.counter("operations").inc(5)
        shard_a.histogram("lat").observe(1.0)
        shard_b.histogram("lat").observe(2.0)
        merged = MetricsRegistry.merged([shard_a, shard_b])
        assert merged.counter("operations").value == 15
        assert merged.histogram("lat").count == 2

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.histogram("lat").observe(0.5)
        text = registry.to_prometheus(prefix="repro")
        assert "repro_requests 3" in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text
        # Buckets are cumulative: every le line is monotonically nondecreasing.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        assert counts == sorted(counts)


class TestEventLog:
    def test_sequence_is_monotonic(self):
        log = EventLog()
        for index in range(5):
            log.record("tick", index=index)
        seqs = [event.seq for event in log]
        assert seqs == sorted(seqs) == list(range(len(seqs)))

    def test_kind_filter(self):
        log = EventLog()
        log.record("a")
        log.record("b")
        log.record("a")
        assert len(log.events(kind="a")) == 2
        assert set(log.kinds()) == {"a", "b"}


class TestTracer:
    def test_parenthood_follows_stack(self):
        tracer = Tracer()
        root = tracer.begin("root")
        child = tracer.begin("child")
        leaf = tracer.event("leaf", duration_ms=0.0)
        tracer.end(child)
        tracer.end(root)
        assert child.parent_id == root.span_id
        assert leaf.parent_id == child.span_id
        assert {span.trace_id for span in (root, child, leaf)} == {root.trace_id}
        assert tracer.roots() == [root]
        assert set(tracer.descendants(root)) == {child, leaf}

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.roots()
        assert first.trace_id != second.trace_id

    def test_tracing_context_restores_previous(self):
        from repro.telemetry import trace as trace_mod

        assert trace_mod.ACTIVE is None
        with tracing(Tracer()) as tracer:
            assert trace_mod.ACTIVE is tracer
        assert trace_mod.ACTIVE is None

    def test_double_end_does_not_drain_the_stack(self):
        """Regression: ending an already-ended span must not pop other spans.

        Before the stack guard, a second ``end`` on a closed span drained the
        open stack down to (and including) whatever happened to be open, so
        one double-end on an exception path orphaned every span the next
        operation opened.
        """
        tracer = Tracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.end(inner)
        tracer.end(inner)  # double-end: must be a stamp-only no-op
        assert tracer.current is outer
        late = tracer.begin("late")
        assert late.parent_id == outer.span_id
        tracer.end(late)
        tracer.end(outer)
        assert tracer.current is None

    def test_ending_foreign_span_leaves_stack_intact(self):
        tracer = Tracer()
        other = Tracer()
        foreign = other.begin("foreign")
        mine = tracer.begin("mine")
        tracer.end(foreign)  # not on this tracer's stack
        assert tracer.current is mine
        tracer.end(mine)

    def test_stack_balanced_when_batch_operation_raises(self):
        """Regression: the executor's shard span closes on *any* exception.

        An operation that raises something other than DeviceFailedError used
        to leave the ``shard.batch`` span open forever; every later span was
        then silently parented under a dead branch of the trace.
        """
        cluster = ClusterService(
            num_shards=2,
            config=CLAMConfig.scaled(
                num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
            ),
        )
        owner = cluster.shard_for(b"key")

        def exploding_insert(key, value):
            raise ValueError("buggy shard")

        cluster.shards[owner].insert = exploding_insert
        with tracing(Tracer()) as tracer:
            with pytest.raises(ValueError, match="buggy shard"):
                cluster.execute_batch([Operation(OpKind.INSERT, b"key", b"value")])
            assert tracer.current is None  # every span closed despite the raise
            # The next root span starts a fresh trace instead of being
            # silently parented under the failed batch's leftovers.
            follow_up = tracer.begin("follow-up")
            assert follow_up.parent_id is None
            tracer.end(follow_up)
            shard_spans = tracer.find("shard.batch")
            assert shard_spans and all(s.attributes.get("failed") for s in shard_spans)


class TestClamTelemetry:
    def test_disabled_by_default(self):
        clam = CLAM(telemetry_config(telemetry_enabled=False))
        assert clam.telemetry is None
        clam.insert(fingerprint_for(1), b"v")
        assert clam.lookup(fingerprint_for(1)).found

    def test_enabled_records_histograms_and_ops(self):
        clam = CLAM(telemetry_config())
        for identifier in range(50):
            clam.insert(fingerprint_for(identifier), b"v")
        for identifier in range(50):
            clam.lookup(fingerprint_for(identifier))
        assert clam.telemetry.histogram("insert_latency_ms").count == 50
        assert clam.telemetry.histogram("lookup_latency_ms").count == 50
        assert clam.telemetry.counter("operations").value == 100

    def test_trace_reaches_device_io(self):
        clam = CLAM(telemetry_config(buffer_capacity_items=8))
        tracer = Tracer()
        with tracing(tracer):
            for identifier in range(200):  # enough to flush to flash
                clam.insert(fingerprint_for(identifier), b"v")
        inserts = tracer.find("clam.insert")
        assert len(inserts) == 200
        device_events = [
            span for span in tracer.spans if span.name.startswith("device.")
        ]
        assert device_events, "flushes must surface as device.* spans"
        # Device I/O triggered by an insert is parented under that insert.
        insert_ids = {span.span_id for span in inserts}
        assert any(span.parent_id in insert_ids for span in device_events)


class TestClusterTelemetry:
    def test_batch_failover_redispatch_stays_in_one_trace(self):
        cluster = make_cluster()
        keys = [fingerprint_for(identifier) for identifier in range(200)]
        cluster.execute_batch([Operation(OpKind.INSERT, key, b"v") for key in keys])
        victim = cluster.shard_for(keys[0])
        cluster.fail_shard(victim)

        tracer = Tracer()
        with tracing(tracer):
            batch = cluster.execute_batch([Operation(OpKind.LOOKUP, key) for key in keys])
        assert batch.retried_operations > 0
        assert all(result is not None and result.found for result in batch.results)

        (root,) = tracer.roots()
        assert root.name == "cluster.batch"
        assert root.attributes["retried_operations"] == batch.retried_operations
        shard_spans = [
            span for span in tracer.descendants(root) if span.name == "shard.batch"
        ]
        shards_touched = {span.attributes["shard"] for span in shard_spans}
        # The victim's sub-batch and its re-dispatch to survivors are all
        # spans of the same trace.
        assert victim in shards_touched
        assert len(shards_touched) >= 2
        assert any(span.attributes.get("failed") for span in shard_spans)
        assert {span.trace_id for span in shard_spans} == {root.trace_id}

    def test_events_cover_down_heal_lifecycle(self):
        cluster = make_cluster()
        keys = [fingerprint_for(identifier) for identifier in range(100)]
        for key in keys:
            cluster.insert(key, b"v")
        victim = cluster.shard_for(keys[0])
        cluster.fail_shard(victim)
        for key in keys:
            cluster.lookup(key)  # trips the failure detector
        cluster.heal_shard(victim)
        kinds = [event.kind for event in cluster.events]
        assert kinds.index("failure_injected") < kinds.index("shard_down")
        assert kinds.index("shard_down") < kinds.index("shard_healed")
        seqs = [event.seq for event in cluster.events]
        assert seqs == sorted(seqs)

    def test_health_distinguishes_healed_from_never_failed(self):
        cluster = make_cluster()
        keys = [fingerprint_for(identifier) for identifier in range(100)]
        for key in keys:
            cluster.insert(key, b"v")
        victim = cluster.shard_for(keys[0])
        cluster.fail_shard(victim)
        for key in keys:
            cluster.lookup(key)
        cluster.heal_shard(victim)

        health = cluster.stats.health()
        assert victim in health["healed_shards"]
        assert victim in health["shards_ever_down"]
        assert victim not in health["shards_never_failed"]
        untouched = set(cluster.live_shard_ids) - {victim}
        assert untouched
        assert untouched <= set(health["shards_never_failed"])
        # Back in the live set: without the event log the heal would have
        # erased the distinction this asserts.
        assert victim in health["live_shards"]

    def test_snapshot_has_per_shard_percentiles_and_validates(self):
        cluster = make_cluster()
        for identifier in range(200):
            cluster.insert(fingerprint_for(identifier), b"v")
        for identifier in range(200):
            cluster.lookup(fingerprint_for(identifier))
        snapshot = cluster.telemetry_snapshot()
        validate_snapshot(snapshot)
        assert snapshot["enabled"] is True
        assert set(snapshot["per_shard"]) == set(cluster.shards)
        for registry in snapshot["per_shard"].values():
            percentiles = registry["histograms"]["lookup_latency_ms"]["percentiles_ms"]
            assert set(percentiles) == {"p50", "p90", "p99", "p999"}

    def test_disabled_cluster_still_exports_events(self):
        cluster = make_cluster(config=telemetry_config(telemetry_enabled=False))
        cluster.fail_shard("shard-0")
        snapshot = cluster.telemetry_snapshot()
        validate_snapshot(snapshot)
        assert snapshot["enabled"] is False
        assert any(event["kind"] == "failure_injected" for event in snapshot["events"])


class TestSchema:
    def test_valid_snapshot_passes(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.histogram("lat").observe(1.0)
        events = EventLog()
        events.record("something", detail=1)
        tracer = Tracer()
        with tracer.span("root"):
            tracer.event("leaf")
        snapshot = build_snapshot(
            registry=registry, events=events, tracer=tracer, include_buckets=True
        )
        validate_snapshot(snapshot)

    def test_missing_required_key_fails(self):
        snapshot = build_snapshot(registry=MetricsRegistry())
        del snapshot["events"]
        with pytest.raises(SchemaError):
            validate_snapshot(snapshot)

    def test_wrong_type_fails(self):
        snapshot = build_snapshot(registry=MetricsRegistry())
        snapshot["schema_version"] = "one"
        with pytest.raises(SchemaError):
            validate_snapshot(snapshot)

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})

    def test_cli_validates_file(self, tmp_path, capsys):
        from repro.telemetry.schema import _main

        path = tmp_path / "snap.json"
        write_snapshot(path, build_snapshot(registry=MetricsRegistry()))
        assert _main([str(path)]) == 0
        path.write_text(json.dumps({"not": "a snapshot"}))
        assert _main([str(path)]) != 0

    def test_cli_accepts_bench_envelope(self, tmp_path):
        from repro.telemetry.schema import _main

        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps({"bench": "x", "telemetry": build_snapshot(registry=MetricsRegistry())})
        )
        assert _main([str(path)]) == 0

    def test_schema_file_loads(self):
        schema = load_schema()
        assert schema["$defs"]["histogram"]["required"]
