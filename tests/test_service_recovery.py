"""Tests for failure detection and re-replication (service.recovery)."""

import pytest

from repro.core.errors import ConfigurationError, ShardUnavailableError
from repro.service import ClusterService, RecoveryCoordinator
from repro.workloads import fingerprint_for


def populated_cluster(num_shards=4, replication_factor=2, keys=300, **kwargs):
    cluster = ClusterService(
        num_shards=num_shards, replication_factor=replication_factor, **kwargs
    )
    inserted = [fingerprint_for(i, namespace=b"recovery") for i in range(keys)]
    for key in inserted:
        cluster.insert(key, b"value-" + key[:6])
    return cluster, inserted


def crash_and_detect(cluster, victim):
    """Crash a shard and trip the error counter so detection fires."""
    cluster.fail_shard(victim)
    for i in range(10_000):
        key = fingerprint_for(i, namespace=b"detect")
        if cluster.shard_for(key) == victim:
            try:
                cluster.lookup(key)
            except ShardUnavailableError:
                pass  # RF=1: the probe itself has no surviving replica
            break
    assert victim in cluster.down_shard_ids


class TestDetection:
    def test_detect_reports_shards_over_threshold(self):
        cluster, _ = populated_cluster()
        coordinator = RecoveryCoordinator(cluster)
        assert coordinator.detect() == ()
        crash_and_detect(cluster, "shard-1")
        assert coordinator.detect() == ("shard-1",)

    def test_recover_with_nothing_down_is_a_no_op(self):
        cluster, _ = populated_cluster()
        coordinator = RecoveryCoordinator(cluster)
        report = coordinator.recover()
        assert report.failed_shards == ()
        assert report.keys_scanned == 0
        assert cluster.num_shards == 4


class TestRecovery:
    def test_no_key_lost_with_rf2(self):
        cluster, keys = populated_cluster()
        crash_and_detect(cluster, "shard-1")
        report = RecoveryCoordinator(cluster).recover()
        assert report.failed_shards == ("shard-1",)
        assert report.keys_lost == 0
        assert report.keys_affected > 0
        assert report.keys_re_replicated == report.keys_affected
        assert "shard-1" not in cluster.shards
        # Every key is readable and back at full replication on survivors.
        for key in keys:
            assert cluster.lookup(key).found
            replicas = cluster.replicas_for(key)
            assert len(replicas) == 2
            for shard_id in replicas:
                assert cluster.shards[shard_id].lookup(key).found

    def test_report_accounting_matches_the_ring(self):
        cluster, keys = populated_cluster()
        victim = "shard-2"
        # Keys whose preference list contains the victim, computed up front.
        expected_affected = sum(
            1 for key in keys if victim in cluster.replicas_for(key)
        )
        crash_and_detect(cluster, victim)
        report = RecoveryCoordinator(cluster).recover()
        assert report.keys_scanned == len(keys)
        assert report.keys_affected == expected_affected
        assert report.copies_written == sum(report.keys_gained.values())
        assert report.work_ms > 0
        assert report.complete
        (handoff,) = report.handoffs
        assert handoff.removed == (victim,)
        assert 0 < handoff.moved_fraction < 1

    def test_rf1_reports_lost_keys_instead_of_hiding_them(self):
        cluster, keys = populated_cluster(replication_factor=1, track_keys=True)
        victim = "shard-0"
        owned = [key for key in keys if cluster.shard_for(key) == victim]
        assert owned  # the victim owns something
        crash_and_detect(cluster, victim)
        report = RecoveryCoordinator(cluster).recover()
        assert report.keys_lost == len(owned)
        assert not report.complete
        assert report.keys_re_replicated == 0

    def test_recovery_updates_cluster_counters_and_health(self):
        cluster, _ = populated_cluster()
        crash_and_detect(cluster, "shard-3")
        coordinator = RecoveryCoordinator(cluster)
        report = coordinator.recover()
        assert cluster.last_recovery is report
        assert cluster.recoveries == 1
        assert coordinator.reports == [report]
        health = cluster.stats.health()
        assert health["recoveries"] == 1
        assert health["keys_re_replicated"] == report.keys_re_replicated
        assert health["down_shards"] == []

    def test_two_simultaneous_failures_with_rf3(self):
        cluster, keys = populated_cluster(
            num_shards=5, replication_factor=3, keys=200
        )
        for victim in ("shard-1", "shard-4"):
            crash_and_detect(cluster, victim)
        report = RecoveryCoordinator(cluster).recover()
        assert set(report.failed_shards) == {"shard-1", "shard-4"}
        assert report.keys_lost == 0
        for key in keys:
            assert cluster.lookup(key).found
            for shard_id in cluster.replicas_for(key):
                assert cluster.shards[shard_id].lookup(key).found

    def test_recovery_requires_key_tracking(self):
        cluster = ClusterService(num_shards=3, replication_factor=1)
        cluster.insert(b"k", b"v")
        cluster.fail_shard("shard-0")
        cluster.record_shard_error("shard-0")
        with pytest.raises(ConfigurationError):
            RecoveryCoordinator(cluster).recover()

    def test_recovery_of_unknown_shard_rejected(self):
        cluster, _ = populated_cluster()
        with pytest.raises(ConfigurationError):
            RecoveryCoordinator(cluster).recover(["never-existed"])

    def test_recovered_cluster_keeps_serving_writes(self):
        cluster, _ = populated_cluster()
        crash_and_detect(cluster, "shard-1")
        RecoveryCoordinator(cluster).recover()
        fresh = [fingerprint_for(i, namespace=b"post-recovery") for i in range(100)]
        for key in fresh:
            cluster.insert(key, b"new")
        for key in fresh:
            assert cluster.lookup(key).value == b"new"
            for shard_id in cluster.replicas_for(key):
                assert cluster.shards[shard_id].lookup(key).found
