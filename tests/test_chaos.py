"""Tests for the chaos-hardened RPC plane (repro.service.chaos + parallel).

Three layers under test:

* **ChaosSchedule / ChaosTransport** — deterministic, seeded fault injection
  over a real socketpair: drop, delay, duplicate, reorder, corrupt, hang.
  EOF always passes through untouched (chaos must never mask a real death).
* **RemoteShard resilience** — per-request deadlines, bounded idempotent
  retries with the same sequence number, stale-frame discard, the worker's
  fatal dying-words frame on a desynchronised stream, and bounded
  ``shutdown`` escalation for a frozen worker.
* **Cluster behaviour under chaos** — hedged reads reroute without marking a
  slow shard dead, a hung shard feeds the supervisor machinery, and a
  randomized chaos run at RF=2 loses zero acknowledged writes while the
  chaos-off configuration stays bit-identical to the in-process cluster.
"""

import multiprocessing
import os
import random
import signal
import socket
import struct
import time
import zlib

import pytest

from repro.core import CLAMConfig
from repro.core.errors import (
    ConfigurationError,
    DeviceFailedError,
    ShardUnavailableError,
    WorkerDiedError,
    WorkerStalledError,
)
from repro.service import wire
from repro.service.chaos import CHAOS_FAULTS, ChaosSchedule, ChaosTransport, derive_seed
from repro.service.cluster import ClusterService
from repro.service.parallel import (
    WORKER_EXIT_DESYNC,
    ParallelClusterService,
    RemoteShard,
)
from repro.workloads.workload import Operation, OpKind


@pytest.fixture
def cluster_config() -> CLAMConfig:
    return CLAMConfig.scaled(
        num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
    )


@pytest.fixture
def fork_ctx():
    return multiprocessing.get_context("fork")


def chaos_pair(schedule, seed=0, on_inject=None, wrap="receiver"):
    """A socketpair with a ChaosTransport wrapped around one end."""
    left, right = socket.socketpair()
    if wrap == "receiver":
        return left, ChaosTransport(right, schedule, seed=seed, on_inject=on_inject)
    return ChaosTransport(left, schedule, seed=seed, on_inject=on_inject), right


class TestChaosSchedule:
    def test_rates_must_be_non_negative(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ChaosSchedule(drop_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigurationError, match="sum"):
            ChaosSchedule(drop_rate=0.6, corrupt_rate=0.6)

    def test_delay_must_be_non_negative(self):
        with pytest.raises(ConfigurationError, match="delay_ms"):
            ChaosSchedule(delay_ms=-1.0)

    def test_script_fault_names_validated(self):
        with pytest.raises(ConfigurationError, match="meteor"):
            ChaosSchedule(script={3: "meteor"})

    def test_script_overrides_rates(self):
        schedule = ChaosSchedule(drop_rate=1.0, script={1: "corrupt", 2: "none"})
        rng = random.Random(0)
        assert schedule.pick(rng, 0) == "drop"  # rates apply off-script
        assert schedule.pick(rng, 1) == "corrupt"  # script wins
        assert schedule.pick(rng, 2) is None  # "none" forces a clean frame

    def test_pick_is_deterministic_per_seed(self):
        schedule = ChaosSchedule(
            drop_rate=0.2, duplicate_rate=0.2, reorder_rate=0.2, corrupt_rate=0.2
        )
        rng_a, rng_b = random.Random(7), random.Random(7)
        draws_a = [schedule.pick(rng_a, i) for i in range(300)]
        draws_b = [schedule.pick(rng_b, i) for i in range(300)]
        assert draws_a == draws_b
        assert set(draws_a) - {None} == {"drop", "duplicate", "reorder", "corrupt"}

    def test_total_rate(self):
        schedule = ChaosSchedule(drop_rate=0.1, hang_rate=0.2)
        assert schedule.total_rate == pytest.approx(0.3)

    def test_fault_taxonomy_is_stable(self):
        # The seeded draw maps rates onto this exact order; reordering it
        # would silently change every replayed schedule.
        assert CHAOS_FAULTS == ("drop", "delay", "duplicate", "reorder", "corrupt", "hang")


class TestDeriveSeed:
    def test_deterministic_and_distinct_per_shard(self):
        seeds = {derive_seed(42, f"shard-{i}") for i in range(16)}
        assert len(seeds) == 16
        assert derive_seed(42, "shard-3") == derive_seed(42, "shard-3")
        assert derive_seed(42, "shard-3") != derive_seed(43, "shard-3")


class TestChaosTransport:
    def test_no_faults_passes_frames_through(self):
        sender, transport = chaos_pair(ChaosSchedule())
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"payload", seq=7)
            frame_type, seq, payload = wire.recv_frame(transport)
            assert (frame_type, seq, payload) == (wire.FRAME_CONTROL_REQUEST, 7, b"payload")
            assert transport.injected_faults == 0
        finally:
            sender.close()
            transport.close()

    def test_drop_discards_one_frame(self):
        sender, transport = chaos_pair(ChaosSchedule(script={0: "drop"}))
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"first", seq=1)
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"second", seq=2)
            _, seq, payload = wire.recv_frame(transport)
            assert (seq, payload) == (2, b"second")
            assert transport.injected_faults == 1
        finally:
            sender.close()
            transport.close()

    def test_duplicate_delivers_twice(self):
        sender, transport = chaos_pair(ChaosSchedule(script={0: "duplicate"}))
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"dup", seq=9)
            first = wire.recv_frame(transport)
            second = wire.recv_frame(transport)
            assert first == second == (wire.FRAME_CONTROL_REQUEST, 9, b"dup")
        finally:
            sender.close()
            transport.close()

    def test_reorder_swaps_adjacent_frames(self):
        sender, transport = chaos_pair(ChaosSchedule(script={0: "reorder"}))
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"a", seq=1)
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"b", seq=2)
            assert wire.recv_frame(transport)[1] == 2
            assert wire.recv_frame(transport)[1] == 1
        finally:
            sender.close()
            transport.close()

    def test_reorder_with_no_following_frame_still_delivers(self):
        # A held frame must not masquerade as a hang: when nothing follows
        # it within the timeout, the pump delivers it instead of raising.
        sender, transport = chaos_pair(ChaosSchedule(script={0: "reorder"}))
        try:
            transport.settimeout(0.05)
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"only", seq=4)
            assert wire.recv_frame(transport)[1] == 4
        finally:
            sender.close()
            transport.close()

    def test_corrupt_raises_typed_crc_error(self):
        sender, transport = chaos_pair(ChaosSchedule(script={0: "corrupt"}))
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"x" * 64, seq=5)
            with pytest.raises(wire.CorruptFrameError):
                wire.recv_frame(transport)
        finally:
            sender.close()
            transport.close()

    def test_delay_sleeps_then_delivers(self):
        sender, transport = chaos_pair(ChaosSchedule(delay_ms=40.0, script={0: "delay"}))
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"late", seq=3)
            started = time.monotonic()
            assert wire.recv_frame(transport)[2] == b"late"
            assert time.monotonic() - started >= 0.04
        finally:
            sender.close()
            transport.close()

    def test_hang_wedges_recv_until_heal(self):
        sender, transport = chaos_pair(ChaosSchedule(script={0: "hang"}))
        try:
            transport.settimeout(0.05)
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"lost", seq=1)
            with pytest.raises(socket.timeout):
                wire.recv_frame(transport)
            assert transport.hung
            transport.heal()
            # The wedged frame stays lost (exactly like a real outage); a
            # resend goes through.
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"retry", seq=2)
            assert wire.recv_frame(transport)[2] == b"retry"
        finally:
            sender.close()
            transport.close()

    def test_hang_swallows_sends(self):
        transport, receiver = chaos_pair(ChaosSchedule(script={0: "hang"}), wrap="sender")
        try:
            receiver.settimeout(0.05)
            wire.send_frame(transport, wire.FRAME_CONTROL_REQUEST, b"gone", seq=1)
            assert transport.hung
            with pytest.raises(TimeoutError):
                wire.recv_frame(receiver)
            transport.heal()
            wire.send_frame(transport, wire.FRAME_CONTROL_REQUEST, b"back", seq=2)
            assert wire.recv_frame(receiver)[2] == b"back"
        finally:
            receiver.close()
            transport.close()

    def test_eof_passes_through_untouched(self):
        # Worker death must stay visible as a TruncatedFrameError even under
        # a certain-corruption schedule: chaos never masks a real hangup.
        sender, transport = chaos_pair(ChaosSchedule(corrupt_rate=1.0))
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"damaged", seq=1)
            sender.close()
            with pytest.raises(wire.CorruptFrameError):
                wire.recv_frame(transport)
            with pytest.raises(wire.TruncatedFrameError):
                wire.recv_frame(transport)
        finally:
            transport.close()

    def test_on_inject_reports_fault_direction_and_frame(self):
        log = []
        sender, transport = chaos_pair(
            ChaosSchedule(script={1: "drop"}),
            on_inject=lambda fault, direction, frame: log.append((fault, direction, frame)),
        )
        try:
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"ok", seq=1)
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"dropped", seq=2)
            wire.send_frame(sender, wire.FRAME_CONTROL_REQUEST, b"ok2", seq=3)
            assert wire.recv_frame(transport)[1] == 1
            assert wire.recv_frame(transport)[1] == 3
            assert log == [("drop", "recv", 1)]
        finally:
            sender.close()
            transport.close()

    def test_send_side_fault_sequence_replays_from_seed(self):
        schedule = ChaosSchedule(
            drop_rate=0.2, duplicate_rate=0.2, reorder_rate=0.2, corrupt_rate=0.2
        )
        histories = []
        for _ in range(2):
            log = []
            transport, receiver = chaos_pair(
                schedule,
                seed=1234,
                on_inject=lambda fault, direction, frame: log.append((fault, frame)),
                wrap="sender",
            )
            try:
                for seq in range(1, 41):
                    wire.send_frame(transport, wire.FRAME_CONTROL_REQUEST, b"p", seq=seq)
            finally:
                receiver.close()
                transport.close()
            histories.append(log)
        assert histories[0] == histories[1]
        assert histories[0], "a 0.8 total rate over 40 frames must inject something"


class _ShardHarness:
    """One directly-built RemoteShard plus its captured RPC events."""

    def __init__(self, ctx, config, **kwargs):
        self.events = []
        self.shard = RemoteShard(
            "shard-t", ctx, config, "dram",
            on_event=lambda kind, **attrs: self.events.append((kind, attrs)),
            **kwargs,
        )

    def kinds(self):
        return [kind for kind, _ in self.events]

    def close(self):
        process = self.shard.process
        if process is not None and process.is_alive():
            try:
                os.kill(process.pid, signal.SIGCONT)  # in case a test froze it
            except ProcessLookupError:
                pass
        self.shard.kill()


class TestRemoteShardResilience:
    def test_dropped_request_is_retried_with_same_seq(self, fork_ctx, cluster_config):
        harness = _ShardHarness(
            fork_ctx, cluster_config,
            request_deadline_ms=200, retry_limit=2, retry_backoff_ms=1.0,
        )
        try:
            shard = harness.shard
            shard.insert(b"key", b"value")
            shard._sock = ChaosTransport(shard._sock, ChaosSchedule(script={0: "drop"}))
            result = shard.lookup(b"key")
            assert result.found and result.value == b"value"
            assert "rpc_timeout" in harness.kinds()
            assert "rpc_retry" in harness.kinds()
            assert shard.alive  # the retry succeeded: circuit stays closed
        finally:
            harness.close()

    def test_corrupt_response_is_retried(self, fork_ctx, cluster_config):
        harness = _ShardHarness(
            fork_ctx, cluster_config,
            request_deadline_ms=500, retry_limit=2, retry_backoff_ms=1.0,
        )
        try:
            shard = harness.shard
            shard.insert(b"key", b"value")
            # Frame 0 is the request send, frame 1 the corrupted response.
            shard._sock = ChaosTransport(shard._sock, ChaosSchedule(script={1: "corrupt"}))
            result = shard.lookup(b"key")
            assert result.found and result.value == b"value"
            assert ("rpc_retry", {"attempt": 1, "reason": "corrupt"}) in harness.events
        finally:
            harness.close()

    def test_duplicate_response_is_discarded_by_seq(self, fork_ctx, cluster_config):
        harness = _ShardHarness(fork_ctx, cluster_config)
        try:
            shard = harness.shard
            shard.insert(b"key", b"value")
            shard._sock = ChaosTransport(shard._sock, ChaosSchedule(script={1: "duplicate"}))
            assert shard.lookup(b"key").value == b"value"
            # The stale duplicate sits in the receive buffer; the next
            # exchange must skip it by sequence number, not mis-match it.
            assert shard.lookup(b"key").value == b"value"
            assert harness.events == []  # discard is silent, not a retry
        finally:
            harness.close()

    def test_stalled_worker_opens_circuit_within_deadline(self, fork_ctx, cluster_config):
        harness = _ShardHarness(
            fork_ctx, cluster_config,
            request_deadline_ms=150, retry_limit=1, retry_backoff_ms=1.0,
        )
        try:
            shard = harness.shard
            shard.insert(b"key", b"value")
            os.kill(shard.pid, signal.SIGSTOP)
            started = time.monotonic()
            with pytest.raises(WorkerStalledError):
                shard.lookup(b"key")
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"deadline+retry should bound the stall, took {elapsed:.1f}s"
            assert not shard.alive  # circuit open until the supervisor restarts it
            stalled = [attrs for kind, attrs in harness.events if kind == "worker_stalled"]
            assert stalled == [{"reason": "timeout", "attempts": 2}]
            # The stall error is a device failure: replica failover applies.
            assert issubclass(WorkerStalledError, DeviceFailedError)
        finally:
            harness.close()

    def test_shutdown_escalates_to_sigkill_for_frozen_worker(self, fork_ctx, cluster_config):
        """Satellite: a worker frozen mid-frame cannot stall shutdown."""
        harness = _ShardHarness(fork_ctx, cluster_config)
        try:
            shard = harness.shard
            # Leave the worker blocked mid-frame: a length prefix promising
            # 100 bytes that never arrive, then freeze it entirely.
            shard._sock.sendall(struct.pack("<I", 100))
            os.kill(shard.pid, signal.SIGSTOP)
            started = time.monotonic()
            with pytest.raises(DeviceFailedError):
                shard.shutdown(timeout_s=0.5)
            elapsed = time.monotonic() - started
            assert elapsed < 10.0, f"shutdown must stay bounded, took {elapsed:.1f}s"
            assert not shard.process.is_alive()
            assert shard.process.exitcode == -signal.SIGKILL
            shard.shutdown()  # idempotent after the escalation
        finally:
            harness.close()

    def test_desynced_stream_gets_fatal_frame_and_typed_exit(self, fork_ctx, cluster_config):
        """Satellite: the worker names its error before dying on desync."""
        harness = _ShardHarness(fork_ctx, cluster_config)
        try:
            shard = harness.shard
            # An oversized length prefix desynchronises the stream beyond
            # recovery: the worker must report it and exit, not crash raw.
            shard._sock.sendall(struct.pack("<I", wire.MAX_FRAME_BYTES + 100))
            shard.process.join(timeout=10.0)
            assert shard.process.exitcode == WORKER_EXIT_DESYNC
            # Its dying words arrive as a fatal control frame, surfaced as a
            # typed WorkerDiedError naming the wire error.
            with pytest.raises(WorkerDiedError, match="OversizedFrameError"):
                shard._recv_matching(wire.FRAME_BATCH_RESPONSE, 999, timeout_s=5.0)
            assert not shard.alive
        finally:
            harness.close()

    def test_worker_survives_a_crc_corrupt_request(self, fork_ctx, cluster_config):
        harness = _ShardHarness(fork_ctx, cluster_config)
        try:
            shard = harness.shard
            payload = wire.encode_control({"op": "ping"})
            covered = struct.pack("<BBI", wire.WIRE_VERSION, wire.FRAME_CONTROL_REQUEST, 42)
            covered += payload
            frame = struct.pack("<I", len(covered) + 4)
            frame += struct.pack("<I", zlib.crc32(covered) ^ 0xFF)  # wrong CRC
            frame += covered
            shard._sock.sendall(frame)
            # Framing held, so the worker just drops the damaged frame and
            # keeps serving.
            assert shard.counters() is not None
            assert shard.process.is_alive()
        finally:
            harness.close()


class TestClusterChaos:
    def test_chaos_off_parity_with_resilience_enabled(self, cluster_config):
        """Deadlines, retries and hedging must be invisible on a healthy
        cluster: results, counters, clocks and the event log all match the
        in-process deployment bit for bit."""
        def drive(cluster):
            records = []
            for i in range(48):
                records.append(cluster.insert(b"key-%d" % i, b"val-%d" % i))
            records.extend(
                cluster.execute_batch(
                    [Operation(OpKind.LOOKUP, b"key-%d" % i) for i in range(48)]
                ).results
            )
            records.append(cluster.delete(b"key-0"))
            return records

        reference = ClusterService(
            num_shards=4, config=cluster_config, replication_factor=2
        )
        expected = drive(reference)
        with ParallelClusterService(
            num_shards=4,
            config=cluster_config,
            replication_factor=2,
            request_deadline_ms=5_000,
            retry_limit=2,
            hedge_delay_ms=100.0,
        ) as cluster:
            actual = drive(cluster)
            assert actual == expected
            assert cluster.stats.combined() == reference.stats.combined()
            assert cluster.clock.now_ms == reference.clock.now_ms
            rpc_kinds = {
                "chaos_injected", "rpc_timeout", "rpc_retry", "hedge_fired", "worker_stalled"
            }
            assert rpc_kinds.isdisjoint(cluster.events.kinds())

    def test_hedged_read_reroutes_without_marking_shard_down(self, cluster_config):
        with ParallelClusterService(
            num_shards=4,
            config=cluster_config,
            replication_factor=2,
            request_deadline_ms=10_000,
            hedge_delay_ms=60.0,
        ) as cluster:
            keys = [b"hedge-%d" % i for i in range(40)]
            for key in keys:
                cluster.insert(key, b"val-" + key)
            victim = cluster.shard_for(keys[0])
            os.kill(cluster.shards[victim].pid, signal.SIGSTOP)
            try:
                batch = cluster.execute_batch([Operation(OpKind.LOOKUP, k) for k in keys])
                assert all(r is not None and r.found for r in batch.results)
                fired = cluster.events.events("hedge_fired")
                assert fired and fired[0].attributes["shard"] == victim
                # Slow is not dead: the victim is neither marked down nor
                # circuit-opened, so it serves again the moment it thaws.
                assert victim not in cluster.down_shard_ids
                assert cluster.shards[victim].alive
            finally:
                os.kill(cluster.shards[victim].pid, signal.SIGCONT)
            # The abandoned response is discarded by sequence number; the
            # thawed shard answers fresh requests correctly.
            result = cluster.lookup(keys[0])
            assert result.found and result.value == b"val-" + keys[0]

    def test_hung_transport_feeds_supervisor_machinery(self, cluster_config):
        with ParallelClusterService(
            num_shards=4,
            config=cluster_config,
            replication_factor=2,
            request_deadline_ms=150,
            retry_limit=1,
            retry_backoff_ms=1.0,
        ) as cluster:
            key = b"hang-target"
            cluster.insert(key, b"precious")
            victim = cluster.shard_for(key)
            shard = cluster.shards[victim]
            cluster._chaos = (ChaosSchedule(script={0: "hang"}), 1)
            cluster._wrap_with_chaos(victim, shard)
            cluster._chaos = None  # only the victim is wrapped
            # The hung worker misses its deadline, exhausts retries, opens
            # the circuit — and the read fails over to the replica.
            result = cluster.lookup(key)
            assert result.found and result.value == b"precious"
            kinds = cluster.events.kinds()
            for kind in ("chaos_injected", "rpc_timeout", "rpc_retry", "worker_stalled"):
                assert kind in kinds, f"missing {kind} in {kinds}"
            assert victim in cluster.down_shard_ids
            # The supervisor restart path brings the shard back clean.
            cluster.restart_worker(victim)
            assert victim not in cluster.down_shard_ids
            assert cluster.lookup(key).found

    def test_randomized_chaos_at_rf2_loses_no_acked_write(self, cluster_config):
        """The headline contract: a seeded mixed-fault schedule at RF=2 —
        drops, duplicates, corruption, delays on every link — costs latency,
        never acknowledged data, and availability stays >= 0.99."""
        schedule = ChaosSchedule(
            drop_rate=0.02,
            duplicate_rate=0.05,
            corrupt_rate=0.02,
            delay_rate=0.05,
            delay_ms=2.0,
        )
        with ParallelClusterService(
            num_shards=4,
            config=cluster_config,
            replication_factor=2,
            request_deadline_ms=120,
            retry_limit=3,
            retry_backoff_ms=2.0,
        ) as cluster:
            cluster.install_chaos(schedule, seed=2026)
            keys = [b"chaos-%d" % i for i in range(120)]
            acked, refused = [], 0
            for key in keys:
                try:
                    cluster.insert(key, b"val-" + key)
                    acked.append(key)
                except (ShardUnavailableError, DeviceFailedError):
                    refused += 1
            assert len(acked) / len(keys) >= 0.99
            assert cluster.events.events("chaos_injected"), "chaos must actually fire"
            cluster.clear_chaos()
            for shard_id in sorted(cluster.down_shard_ids):
                cluster.restart_worker(shard_id)
            for key in acked:
                result = cluster.lookup(key)
                assert result.found and result.value == b"val-" + key, (
                    f"acknowledged write {key!r} lost under chaos"
                )

    def test_install_chaos_covers_replacement_workers(self, cluster_config):
        with ParallelClusterService(
            num_shards=2, config=cluster_config, replication_factor=2
        ) as cluster:
            cluster.install_chaos(ChaosSchedule(), seed=5)
            assert all(
                isinstance(shard._sock, ChaosTransport) for shard in cluster.shards.values()
            )
            cluster.kill_worker("shard-0")
            cluster.check_workers()
            cluster.restart_worker("shard-0")
            assert isinstance(cluster.shards["shard-0"]._sock, ChaosTransport)
            cluster.clear_chaos()
            assert not any(
                isinstance(shard._sock, ChaosTransport) for shard in cluster.shards.values()
            )
            cluster.insert(b"key", b"value")
            assert cluster.lookup(b"key").found
