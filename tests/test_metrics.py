"""Tests for latency metrics (summaries, CDF/CCDF helpers)."""

import pytest

from repro.workloads import cdf_points, ccdf_points, summarize_latencies
from repro.workloads.metrics import fraction_at_or_below, geometric_mean


class TestSummarizeLatencies:
    def test_basic_summary(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean_ms == pytest.approx(2.5)
        assert summary.min_ms == 1.0
        assert summary.max_ms == 4.0
        assert summary.median_ms == pytest.approx(2.5)

    def test_percentiles_ordered(self):
        summary = summarize_latencies(list(range(1000)))
        assert summary.median_ms <= summary.p90_ms <= summary.p99_ms <= summary.p999_ms <= summary.max_ms

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_as_dict(self):
        assert "p99_ms" in summarize_latencies([1.0]).as_dict()


class TestCDF:
    def test_cdf_monotone(self):
        points = cdf_points([5.0, 1.0, 3.0, 2.0, 4.0], num_points=10)
        latencies = [latency for latency, _ in points]
        fractions = [fraction for _, fraction in points]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_ccdf_complements_cdf(self):
        samples = [1.0, 2.0, 3.0]
        cdf = cdf_points(samples, num_points=5)
        ccdf = ccdf_points(samples, num_points=5)
        for (_, cumulative), (_, complementary) in zip(cdf, ccdf):
            assert cumulative + complementary == pytest.approx(1.0)

    def test_cdf_requires_samples_and_points(self):
        with pytest.raises(ValueError):
            cdf_points([], num_points=5)
        with pytest.raises(ValueError):
            cdf_points([1.0], num_points=1)


class TestOtherHelpers:
    def test_fraction_at_or_below(self):
        samples = [0.5, 1.0, 2.0, 10.0]
        assert fraction_at_or_below(samples, 1.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            fraction_at_or_below([], 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([0.0])
