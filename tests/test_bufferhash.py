"""Tests for the partitioned BufferHash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BufferHash, CLAMConfig, ConfigurationError
from repro.flashsim import FlashChip, SSD, SimulationClock
from repro.flashsim.device import DeviceGeometry
from repro.flashsim.flash_chip import FlashChipProfile, GENERIC_FLASH_CHIP_PROFILE


def _bufferhash(num_super_tables=4, buffer_capacity=16, incarnations=4, device=None):
    clock = SimulationClock()
    if device is None:
        device = SSD(clock=clock)
    else:
        clock = device.clock
    config = CLAMConfig.scaled(
        num_super_tables=num_super_tables,
        buffer_capacity_items=buffer_capacity,
        incarnations_per_table=incarnations,
    )
    return BufferHash(config=config, device=device, clock=clock)


class TestPartitioning:
    def test_keys_spread_across_super_tables(self):
        bufferhash = _bufferhash(num_super_tables=8)
        owners = {bufferhash.table_for(b"key-%d" % i).table_id for i in range(500)}
        assert len(owners) == 8

    def test_same_key_always_same_table(self):
        bufferhash = _bufferhash()
        assert bufferhash.table_for(b"stable").table_id == bufferhash.table_for(b"stable").table_id

    def test_each_table_created(self):
        bufferhash = _bufferhash(num_super_tables=6)
        assert len(bufferhash.tables) == 6


class TestOperations:
    def test_insert_lookup_round_trip(self):
        bufferhash = _bufferhash()
        bufferhash.insert(b"key", b"value")
        assert bufferhash.lookup(b"key").value == b"value"
        assert bufferhash.get(b"key") == b"value"
        assert b"key" in bufferhash

    def test_accepts_string_and_int_keys(self):
        bufferhash = _bufferhash()
        bufferhash.insert("string-key", b"1")
        bufferhash.insert(1234, b"2")
        assert bufferhash.get("string-key") == b"1"
        assert bufferhash.get(1234) == b"2"

    def test_delete(self):
        bufferhash = _bufferhash()
        bufferhash.insert(b"key", b"value")
        bufferhash.delete(b"key")
        assert not bufferhash.lookup(b"key").found

    def test_update_returns_latest(self):
        bufferhash = _bufferhash()
        bufferhash.insert(b"key", b"v1")
        for i in range(100):
            bufferhash.insert(b"filler-%d" % i, b"x")
        bufferhash.update(b"key", b"v2")
        assert bufferhash.get(b"key") == b"v2"

    def test_recent_keys_all_retained(self):
        bufferhash = _bufferhash(num_super_tables=4, buffer_capacity=16, incarnations=4)
        keys = [b"key-%d" % i for i in range(2000)]
        for key in keys:
            bufferhash.insert(key, b"v" + key)
        # The most recent |buffer| keys are guaranteed to be retained.
        recent = 4 * 16
        assert all(bufferhash.lookup(key).found for key in keys[-recent:])

    def test_aggregate_counters(self):
        bufferhash = _bufferhash(buffer_capacity=8)
        for i in range(200):
            bufferhash.insert(b"key-%d" % i, b"v")
        assert bufferhash.total_flushes > 0
        assert bufferhash.total_incarnations > 0
        assert bufferhash.total_evictions >= 0
        assert sum(bufferhash.cascade_histogram().values()) == bufferhash.total_flushes

    def test_snapshot_items_contains_recent_inserts(self):
        bufferhash = _bufferhash()
        bufferhash.insert(b"a", b"1")
        bufferhash.insert(b"b", b"2")
        snapshot = bufferhash.snapshot_items()
        assert snapshot[b"a"] == b"1"
        assert snapshot[b"b"] == b"2"

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=16), st.binary(min_size=1, max_size=8)),
            min_size=1,
            max_size=150,
        )
    )
    def test_property_matches_dict_within_retention(self, pairs):
        """As long as fewer distinct keys than the retention capacity are live,
        BufferHash behaves exactly like a dict."""
        bufferhash = _bufferhash(num_super_tables=2, buffer_capacity=32, incarnations=8)
        model = {}
        for key, value in pairs:
            bufferhash.insert(key, value)
            model[key] = value
        for key, value in model.items():
            assert bufferhash.get(key) == value


class TestDeviceIntegration:
    def test_runs_on_flash_chip_with_partitioned_store(self):
        clock = SimulationClock()
        profile = FlashChipProfile(
            name="test-chip",
            geometry=DeviceGeometry(page_size=512, pages_per_block=8, num_blocks=256),
            cost_model=GENERIC_FLASH_CHIP_PROFILE.cost_model,
        )
        chip = FlashChip(profile=profile, clock=clock)
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=16, incarnations_per_table=2
        )
        bufferhash = BufferHash(config=config, device=chip, clock=clock)
        keys = [b"chip-key-%d" % i for i in range(200)]
        for key in keys:
            bufferhash.insert(key, b"v" + key)
        recent = 4 * 16
        assert all(bufferhash.lookup(key).found for key in keys[-recent:])

    def test_too_small_device_rejected(self):
        clock = SimulationClock()
        tiny = SSD(clock=clock)
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=16, incarnations_per_table=10_000_000
        )
        with pytest.raises(ConfigurationError):
            BufferHash(config=config, device=tiny, clock=clock)

    def test_incarnations_derived_from_device_when_unspecified(self):
        clock = SimulationClock()
        ssd = SSD(clock=clock)
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=16, incarnations_per_table=None
        )
        bufferhash = BufferHash(config=config, device=ssd, clock=clock)
        assert bufferhash.incarnations_per_table >= 1

    def test_mismatched_clock_rejected(self):
        ssd = SSD(clock=SimulationClock())
        with pytest.raises(ConfigurationError):
            BufferHash(config=CLAMConfig.scaled(), device=ssd, clock=SimulationClock())
