"""Tests for the raw flash chip model (erase-before-write semantics)."""

import pytest

from repro.flashsim import FlashChip, FlashChipError, IOKind, SimulationClock


class TestFlashChip:
    def test_program_then_read(self, flash_chip):
        flash_chip.write_page(0, b"hello")
        data, _latency = flash_chip.read_page(0)
        assert data == b"hello"

    def test_rewriting_dirty_page_rejected(self, flash_chip):
        flash_chip.write_page(0, b"a")
        with pytest.raises(FlashChipError):
            flash_chip.write_page(0, b"b")

    def test_erase_allows_rewrite(self, flash_chip):
        flash_chip.write_page(0, b"a")
        flash_chip.erase_block(0)
        flash_chip.write_page(0, b"b")
        assert flash_chip.read_page(0)[0] == b"b"

    def test_erase_clears_whole_block(self, flash_chip):
        pages_per_block = flash_chip.geometry.pages_per_block
        flash_chip.write_page(0, b"a")
        flash_chip.write_page(pages_per_block - 1, b"b")
        flash_chip.erase_block(0)
        assert not flash_chip.is_dirty(0)
        assert not flash_chip.is_dirty(pages_per_block - 1)
        assert flash_chip.read_page(0)[0] == b""

    def test_erase_does_not_touch_other_blocks(self, flash_chip):
        other = flash_chip.geometry.pages_per_block  # first page of block 1
        flash_chip.write_page(other, b"keep")
        flash_chip.erase_block(0)
        assert flash_chip.read_page(other)[0] == b"keep"

    def test_erase_out_of_range_rejected(self, flash_chip):
        with pytest.raises(IndexError):
            flash_chip.erase_block(flash_chip.geometry.num_blocks)

    def test_block_of(self, flash_chip):
        pages_per_block = flash_chip.geometry.pages_per_block
        assert flash_chip.block_of(0) == 0
        assert flash_chip.block_of(pages_per_block) == 1

    def test_erase_counted_per_block(self, flash_chip):
        flash_chip.erase_block(3)
        flash_chip.erase_block(3)
        assert flash_chip.erase_count_per_block[3] == 2

    def test_erase_recorded_in_stats(self, flash_chip):
        flash_chip.erase_block(0)
        assert flash_chip.stats.count(IOKind.ERASE) == 1

    def test_write_range_over_dirty_page_rejected(self, flash_chip):
        flash_chip.write_page(2, b"x")
        with pytest.raises(FlashChipError):
            flash_chip.write_range(0, [b"a", b"b", b"c"])

    def test_erase_slower_than_page_write(self):
        clock = SimulationClock()
        chip = FlashChip(clock=clock)
        write_latency = chip.write_page(0, b"a")
        erase_latency = chip.erase_block(1)
        assert erase_latency > write_latency

    def test_write_slower_than_read(self, flash_chip):
        write_latency = flash_chip.write_page(0, b"a")
        _data, read_latency = flash_chip.read_page(0)
        assert write_latency > read_latency
