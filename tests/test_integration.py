"""End-to-end integration tests crossing several subsystems."""


from repro.baselines import ExternalHashIndex
from repro.core import CLAM, CLAMConfig
from repro.flashsim import MagneticDisk, SSD, SimulationClock, TRANSCEND_SSD_PROFILE
from repro.wanopt import (
    CompressionEngine,
    ContentCache,
    Link,
    WANOptimizer,
    build_payload_objects,
)
from repro.workloads import (
    WorkloadRunner,
    WorkloadSpec,
    build_lookup_then_insert_workload,
)


class TestPaperHeadlineComparisons:
    """The cross-system comparisons the paper's abstract and intro lead with."""

    def test_clam_orders_of_magnitude_faster_than_bdb(self):
        """CLAM on SSD vs BDB on disk: 1-2 orders of magnitude on both
        lookups and inserts (abstract: 0.006/0.06 ms vs ~7 ms)."""
        config = CLAMConfig.scaled(
            num_super_tables=16, buffer_capacity_items=128, incarnations_per_table=8
        )
        spec = WorkloadSpec(
            num_keys=6_000,
            target_lsr=0.4,
            recency_window=int(config.total_items_capacity(8) * 0.8),
            seed=99,
        )
        operations = build_lookup_then_insert_workload(spec)

        clam = CLAM(config, storage="intel-ssd")
        clam_report = WorkloadRunner(clam).run(operations)

        bdb = ExternalHashIndex(MagneticDisk(clock=SimulationClock()), cache_pages=32)
        bdb_report = WorkloadRunner(bdb).run(operations, max_operations=3_000)

        assert clam_report.mean_insert_latency_ms * 100 < bdb_report.mean_insert_latency_ms
        assert clam_report.mean_lookup_latency_ms * 20 < bdb_report.mean_lookup_latency_ms
        # Absolute calibration: CLAM latencies land in the paper's regime.
        assert clam_report.mean_insert_latency_ms < 0.05
        assert clam_report.mean_lookup_latency_ms < 0.15

    def test_clam_supports_paper_operation_rate(self):
        """§1: the target systems need >10K hash operations per second; the
        simulated CLAM sustains that comfortably in simulated time."""
        clam = CLAM(
            CLAMConfig.scaled(num_super_tables=16, buffer_capacity_items=128),
            storage="intel-ssd",
        )
        for i in range(5_000):
            clam.insert(b"rate-key-%d" % i, b"v")
            clam.lookup(b"rate-key-%d" % (i // 2))
        assert clam.throughput_ops_per_second() > 10_000


class TestRealPayloadWanPipeline:
    """Drive the real-payload path: Rabin chunking -> SHA-1 -> CLAM -> cache -> link."""

    def test_second_transfer_of_same_content_compresses_away(self):
        clock = SimulationClock()
        clam = CLAM(
            CLAMConfig.scaled(num_super_tables=8, buffer_capacity_items=64),
            storage=SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock),
        )
        cache = ContentCache(MagneticDisk(clock=clock))
        engine = CompressionEngine(index=clam, content_cache=cache)
        link = Link(bandwidth_mbps=50.0, clock=clock)
        optimizer = WANOptimizer(engine=engine, link=link, clock=clock)

        objects = build_payload_objects(
            num_objects=3, object_size=32 * 1024, redundancy=0.0, seed=3
        )
        # First pass: all content is new.
        first = optimizer.run_throughput_test(objects)
        # Second pass: the identical objects are transferred again.
        second = optimizer.run_throughput_test(objects)
        assert second.total_compressed_bytes < first.total_compressed_bytes / 5
        assert second.effective_bandwidth_improvement > first.effective_bandwidth_improvement

    def test_content_cache_can_reconstruct_chunks(self):
        clock = SimulationClock()
        clam = CLAM(CLAMConfig.scaled(num_super_tables=4, buffer_capacity_items=64), storage=SSD(clock=clock))
        cache = ContentCache(MagneticDisk(clock=clock))
        engine = CompressionEngine(index=clam, content_cache=cache)
        objects = build_payload_objects(num_objects=2, object_size=16 * 1024, redundancy=0.0, seed=9)
        for obj in objects:
            engine.process_object(obj)
        # Every unique chunk is retrievable from the cache byte-for-byte.
        for obj in objects:
            for chunk in obj.chunks:
                payload, _latency = cache.read(chunk.fingerprint)
                assert payload == chunk.payload


class TestEvictionUnderSustainedLoad:
    def test_clam_remains_correct_across_many_eviction_cycles(self):
        """Keys inside the retention window are always found with the newest
        value; evicted keys simply disappear (FIFO semantics)."""
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
        )
        clam = CLAM(config, storage="transcend-ssd")
        total = 6_000
        for i in range(total):
            clam.insert(b"cycle-key-%d" % i, b"value-%d" % i)
        # Guaranteed-retained suffix: the most recent buffer's worth per table.
        guaranteed = config.num_super_tables * config.buffer_capacity_items
        for i in range(total - guaranteed, total):
            result = clam.lookup(b"cycle-key-%d" % i)
            assert result.found
            assert result.value == b"value-%d" % i
        # Far-older keys have been evicted.
        assert not clam.lookup(b"cycle-key-0").found
        assert clam.bufferhash.total_evictions > 0

    def test_update_heavy_load_with_update_based_eviction(self):
        config = CLAMConfig.scaled(
            num_super_tables=4,
            buffer_capacity_items=32,
            incarnations_per_table=4,
            eviction_policy_name="update",
        )
        clam = CLAM(config, storage="intel-ssd")
        hot_keys = [b"hot-%d" % i for i in range(50)]
        for round_number in range(40):
            for key in hot_keys:
                clam.insert(key, b"round-%d" % round_number)
        # All hot keys must resolve to the latest round despite heavy churn.
        for key in hot_keys:
            assert clam.lookup(key).value == b"round-39"
