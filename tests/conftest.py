"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import CLAM, CLAMConfig
from repro.flashsim import (
    FlashChip,
    MagneticDisk,
    SSD,
    SimulationClock,
    INTEL_SSD_PROFILE,
    TRANSCEND_SSD_PROFILE,
)


@pytest.fixture
def clock() -> SimulationClock:
    """A fresh simulation clock."""
    return SimulationClock()


@pytest.fixture
def intel_ssd(clock: SimulationClock) -> SSD:
    """An Intel-profile SSD sharing the test clock."""
    return SSD(profile=INTEL_SSD_PROFILE, clock=clock)


@pytest.fixture
def transcend_ssd(clock: SimulationClock) -> SSD:
    """A Transcend-profile SSD sharing the test clock."""
    return SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock)


@pytest.fixture
def disk(clock: SimulationClock) -> MagneticDisk:
    """A magnetic disk sharing the test clock."""
    return MagneticDisk(clock=clock)


@pytest.fixture
def flash_chip(clock: SimulationClock) -> FlashChip:
    """A raw flash chip sharing the test clock."""
    return FlashChip(clock=clock)


@pytest.fixture
def small_config() -> CLAMConfig:
    """A small CLAM configuration that flushes and evicts quickly in tests."""
    return CLAMConfig.scaled(
        num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=4
    )


@pytest.fixture
def small_clam(small_config: CLAMConfig) -> CLAM:
    """A small CLAM on an Intel-profile SSD."""
    return CLAM(small_config, storage="intel-ssd")
