"""Tests for distributing super tables across multiple SSDs (§5.2)."""

import pytest

from repro.core import CLAM, CLAMConfig, ConfigurationError, MultiDeviceLogStore
from repro.flashsim import SSD, SimulationClock, TRANSCEND_SSD_PROFILE


def _two_ssds(clock=None):
    clock = clock if clock is not None else SimulationClock()
    return [SSD(clock=clock, name="ssd-0"), SSD(clock=clock, name="ssd-1")], clock


class TestMultiDeviceLogStore:
    def test_round_trip_across_devices(self):
        devices, _clock = _two_ssds()
        store = MultiDeviceLogStore(devices)
        address_a, _ = store.write_incarnation_for(0, [b"on-device-0"])
        address_b, _ = store.write_incarnation_for(1, [b"on-device-1"])
        assert store.read_page(address_a, 0)[0] == b"on-device-0"
        assert store.read_page(address_b, 0)[0] == b"on-device-1"

    def test_owners_map_to_distinct_devices(self):
        devices, _clock = _two_ssds()
        store = MultiDeviceLogStore(devices)
        store.write_incarnation_for(0, [b"a"])
        store.write_incarnation_for(1, [b"b"])
        # Each device received exactly one incarnation write.
        assert devices[0].stats.count() > 0
        assert devices[1].stats.count() > 0

    def test_release_and_reuse(self):
        devices, _clock = _two_ssds()
        store = MultiDeviceLogStore(devices)
        address, _ = store.write_incarnation_for(0, [b"x", b"y"])
        store.release(address, 2)
        # Releasing must not break subsequent writes or reads on that device.
        new_address, _ = store.write_incarnation_for(0, [b"z"])
        assert store.read_page(new_address, 0)[0] == b"z"

    def test_requires_shared_clock(self):
        ssd_a = SSD(clock=SimulationClock())
        ssd_b = SSD(clock=SimulationClock())
        with pytest.raises(ConfigurationError):
            MultiDeviceLogStore([ssd_a, ssd_b])

    def test_requires_at_least_one_device(self):
        with pytest.raises(ConfigurationError):
            MultiDeviceLogStore([])


class TestCLAMOnMultipleSSDs:
    def test_correctness_with_two_ssds(self):
        config = CLAMConfig.scaled(
            num_super_tables=8, buffer_capacity_items=32, incarnations_per_table=4
        )
        clam = CLAM(config, storage=["intel-ssd", "intel-ssd"])
        keys = [b"multi-%d" % i for i in range(1_500)]
        for key in keys:
            clam.insert(key, b"v" + key)
        guaranteed = config.num_super_tables * config.buffer_capacity_items
        assert all(clam.lookup(key).found for key in keys[-guaranteed:])

    def test_both_devices_receive_io(self):
        config = CLAMConfig.scaled(
            num_super_tables=8, buffer_capacity_items=32, incarnations_per_table=4
        )
        clock = SimulationClock()
        devices = [
            SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock, name="left"),
            SSD(profile=TRANSCEND_SSD_PROFILE, clock=clock, name="right"),
        ]
        clam = CLAM(config, storage=devices)
        for i in range(2_000):
            clam.insert(b"spread-%d" % i, b"v")
        assert devices[0].stats.count() > 0
        assert devices[1].stats.count() > 0

    def test_capacity_scales_with_device_count(self):
        config = CLAMConfig.scaled(
            num_super_tables=4, buffer_capacity_items=32, incarnations_per_table=None
        )
        single = CLAM(config, storage=["intel-ssd"])
        double = CLAM(config, storage=["intel-ssd", "intel-ssd"])
        assert (
            double.bufferhash.incarnations_per_table
            >= 2 * single.bufferhash.incarnations_per_table
        )
